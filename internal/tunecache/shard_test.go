package tunecache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
)

func TestNewShardedClampsShardCount(t *testing.T) {
	predict := func(string, plan.Instance) (Plan, error) { return Plan{}, nil }
	cases := []struct {
		capacity, shards, want int
	}{
		{2, 16, 1},        // tiny cache collapses to one shard (exact LRU)
		{8, 16, 1},        // one minShardCapacity slice only
		{64, 4, 4},        // explicit count honored when capacity allows
		{64, 16, 8},       // clamped to capacity/minShardCapacity
		{1024, 1, 1},      // explicit single shard always honored
		{1 << 20, 16, 16}, // large cache keeps the request
	}
	for _, tc := range cases {
		c := NewSharded(tc.capacity, tc.shards, predict)
		if got := c.Shards(); got != tc.want {
			t.Errorf("NewSharded(%d, %d).Shards() = %d, want %d",
				tc.capacity, tc.shards, got, tc.want)
		}
		if c.Capacity() != tc.capacity {
			t.Errorf("capacity %d mangled to %d", tc.capacity, c.Capacity())
		}
	}
}

// TestShardCapacitySumsToTotal: the per-shard bounds must partition the
// requested capacity exactly, including when it does not divide evenly.
func TestShardCapacitySumsToTotal(t *testing.T) {
	c := NewSharded(100, 3, nil)
	if c.Shards() != 3 {
		t.Fatalf("shards = %d, want 3", c.Shards())
	}
	sum := 0
	for _, s := range c.shards {
		if s.cap < 100/3 {
			t.Errorf("shard bound %d below fair share", s.cap)
		}
		sum += s.cap
	}
	if sum != 100 {
		t.Errorf("shard bounds sum to %d, want 100", sum)
	}
}

// TestShardDistribution: distinct keys must spread across the shards
// rather than pile onto one — the whole point of sharding.
func TestShardDistribution(t *testing.T) {
	c := NewSharded(1024, 8, func(system string, in plan.Instance) (Plan, error) {
		return planFor(in.MaxSide()), nil
	})
	if c.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", c.Shards())
	}
	const keys = 512
	for i := 0; i < keys; i++ {
		if _, _, err := c.Get("sys", inst(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	lens := c.shardLens()
	total := 0
	for i, n := range lens {
		if n == 0 {
			t.Errorf("shard %d empty after %d distinct keys", i, keys)
		}
		// With 512 keys over 8 shards (fair share 64), any shard holding
		// 4x its share indicates a broken hash.
		if n > 4*keys/len(lens) {
			t.Errorf("shard %d holds %d of %d keys (fair share %d)", i, n, keys, keys/len(lens))
		}
		total += n
	}
	if total != keys {
		t.Errorf("resident total %d, want %d", total, keys)
	}
}

// TestShardStatsSumToAggregate: the per-shard telemetry snapshots must
// partition the aggregate counters exactly — /metrics per-shard series
// and the /v1/stats totals render from the same underlying numbers.
func TestShardStatsSumToAggregate(t *testing.T) {
	c := NewSharded(1024, 8, func(system string, in plan.Instance) (Plan, error) {
		return planFor(in.MaxSide()), nil
	})
	for i := 0; i < 256; i++ {
		if _, _, err := c.Get("sys", inst(100+i%64)); err != nil {
			t.Fatal(err)
		}
	}
	per := c.ShardStats()
	if len(per) != c.Shards() {
		t.Fatalf("ShardStats returned %d entries, want %d", len(per), c.Shards())
	}
	var sum Stats
	for _, st := range per {
		sum.add(st)
	}
	agg := c.Stats()
	if sum.Hits != agg.Hits || sum.Misses != agg.Misses ||
		sum.Coalesced != agg.Coalesced || sum.Size != agg.Size {
		t.Fatalf("shard stats sum %+v disagrees with aggregate %+v", sum, agg)
	}
	if agg.Misses != 64 || agg.Hits != 256-64 {
		t.Fatalf("unexpected traffic split: %+v", agg)
	}
}

// TestShardedStress hammers a multi-shard cache from many goroutines
// with overlapping Get/Put/Save/Load/Stats traffic. Run under -race in
// CI; correctness here is "no race, no deadlock, consistent counters".
func TestShardedStress(t *testing.T) {
	c := NewSharded(256, 8, func(system string, in plan.Instance) (Plan, error) {
		return planFor(in.MaxSide()), nil
	})
	if c.Shards() < 2 {
		t.Fatalf("want a multi-shard cache, got %d shards", c.Shards())
	}

	// A pre-serialized donor document for concurrent Loads.
	donor := NewSharded(64, 4, nil)
	for i := 0; i < 32; i++ {
		if err := donor.Put("warm", inst(5000+i), planFor(5000+i)); err != nil {
			t.Fatal(err)
		}
	}
	var donorDoc bytes.Buffer
	if err := donor.Save(&donorDoc); err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				dim := 100 + (g*31+i*7)%160
				switch i % 8 {
				case 5:
					if err := c.Put("sys", inst(dim), planFor(dim)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 6:
					var buf bytes.Buffer
					if err := c.Save(&buf); err != nil {
						t.Errorf("Save: %v", err)
						return
					}
				case 7:
					if _, err := c.Load(bytes.NewReader(donorDoc.Bytes())); err != nil {
						t.Errorf("Load: %v", err)
						return
					}
				default:
					p, _, err := c.Get("sys", inst(dim))
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if p != planFor(dim) {
						t.Errorf("wrong plan for dim %d: %+v", dim, p)
						return
					}
				}
				_ = c.Stats()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > c.Capacity() {
		t.Errorf("size %d exceeds capacity %d", st.Size, c.Capacity())
	}
	if st.Errors != 0 {
		t.Errorf("unexpected predict errors: %+v", st)
	}
}

// savedOrder decodes a Save document into its key sequence (LRU first).
func savedOrder(t *testing.T, c *Cache) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var dto struct {
		Version int `json:"version"`
		Shards  int `json:"shards"`
		Entries []struct {
			System string  `json:"system"`
			Dim    int     `json:"dim"`
			Rows   int     `json:"rows"`
			Cols   int     `json:"cols"`
			TSize  float64 `json:"tsize"`
			DSize  int     `json:"dsize"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Version != cacheFormatVersion {
		t.Fatalf("saved version %d, want %d", dto.Version, cacheFormatVersion)
	}
	if dto.Shards != c.Shards() {
		t.Fatalf("saved shards %d, want %d", dto.Shards, c.Shards())
	}
	keys := make([]string, len(dto.Entries))
	for i, e := range dto.Entries {
		in := plan.Instance{Dim: e.Dim, Rows: e.Rows, Cols: e.Cols, TSize: e.TSize, DSize: e.DSize}
		keys[i] = Key(e.System, in)
	}
	return keys
}

// TestPersistenceAcrossShardCounts: the saved order is the global
// recency order however keys hashed onto shards, and a round trip
// through caches of different shard counts preserves it.
func TestPersistenceAcrossShardCounts(t *testing.T) {
	predict := func(system string, in plan.Instance) (Plan, error) {
		return planFor(in.MaxSide()), nil
	}
	src := NewSharded(256, 8, predict)
	// Touch keys in a deliberate order, including re-promotions that
	// cross shard boundaries.
	dims := []int{100, 200, 300, 400, 500, 600, 700, 800}
	for _, d := range dims {
		src.Get("s", inst(d))
	}
	src.Get("s", inst(300)) // recency: 100,200,400,...,800,300
	src.Get("s", inst(100)) // recency: 200,400,...,800,300,100
	wantOrder := []string{
		Key("s", inst(200).Normalize()), Key("s", inst(400).Normalize()),
		Key("s", inst(500).Normalize()), Key("s", inst(600).Normalize()),
		Key("s", inst(700).Normalize()), Key("s", inst(800).Normalize()),
		Key("s", inst(300).Normalize()), Key("s", inst(100).Normalize()),
	}
	if got := savedOrder(t, src); strings.Join(got, ";") != strings.Join(wantOrder, ";") {
		t.Fatalf("8-shard saved order:\n got %v\nwant %v", got, wantOrder)
	}

	// Round trip through a single-shard cache and back through a
	// 4-shard one: the order must survive both.
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mid := NewSharded(256, 1, predict)
	if n, err := mid.Load(&buf); err != nil || n != len(dims) {
		t.Fatalf("Load into 1 shard = (%d, %v), want (%d, nil)", n, err, len(dims))
	}
	if got := savedOrder(t, mid); strings.Join(got, ";") != strings.Join(wantOrder, ";") {
		t.Fatalf("1-shard saved order:\n got %v\nwant %v", got, wantOrder)
	}
	var buf2 bytes.Buffer
	if err := mid.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	dst := NewSharded(64, 4, predict)
	if _, err := dst.Load(&buf2); err != nil {
		t.Fatal(err)
	}
	if got := savedOrder(t, dst); strings.Join(got, ";") != strings.Join(wantOrder, ";") {
		t.Fatalf("4-shard saved order:\n got %v\nwant %v", got, wantOrder)
	}

	// And the tail-keeping contract on a shard-count change with
	// eviction: an exact-LRU (single-shard) destination keeps precisely
	// the most recent tail of the 8-shard writer's file.
	var buf3 bytes.Buffer
	if err := dst.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	small := NewSharded(3, 1, predict)
	if _, err := small.Load(&buf3); err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{800, 300, 100} {
		if _, out, _ := small.Get("s", inst(d)); out != Hit {
			t.Errorf("tail entry dim %d: outcome %v, want hit", d, out)
		}
	}
	if _, out, _ := small.Get("s", inst(200)); out == Hit {
		t.Error("oldest entry survived a capacity-3 load")
	}
}

// TestLoadVersion1: files written by a pre-sharding daemon (version 1)
// must keep loading.
func TestLoadVersion1(t *testing.T) {
	doc := `{"version":1,"entries":[
	 {"system":"s","dim":500,"tsize":10,"dsize":1,"cpu_tile":8,"band":-1,"gpu_tile":1,"halo":-1,"rtime_ns":5},
	 {"system":"s","rows":600,"cols":1400,"tsize":10,"dsize":1,"cpu_tile":4,"band":-1,"gpu_tile":1,"halo":-1,"rtime_ns":7}]}`
	c := NewSharded(64, 4, nil)
	n, err := c.Load(strings.NewReader(doc))
	if err != nil || n != 2 {
		t.Fatalf("Load v1 = (%d, %v), want (2, nil)", n, err)
	}
	if _, out, _ := c.Get("s", plan.Instance{Dim: 500, TSize: 10, DSize: 1}); out != Hit {
		t.Errorf("square v1 entry: outcome %v, want hit", out)
	}
	p, out, _ := c.Get("s", plan.Instance{Rows: 600, Cols: 1400, TSize: 10, DSize: 1})
	if out != Hit || p.RTimeNs != 7 {
		t.Errorf("rect v1 entry: (%+v, %v), want resident with rtime 7", p, out)
	}
	// A fresh Save upgrades the document to the current version.
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf(`"version": %d`, cacheFormatVersion)) {
		t.Errorf("re-save kept the old version:\n%s", buf.String())
	}
}

package tunecache

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/plan"
)

func inst(dim int) plan.Instance {
	return plan.Instance{Dim: dim, TSize: 100, DSize: 1}
}

func planFor(dim int) Plan {
	return Plan{Par: plan.Params{CPUTile: 8, Band: dim - 1, GPUTile: 1, Halo: -1},
		RTimeNs: float64(dim), SerialNs: float64(10 * dim)}
}

func TestGetMissThenHit(t *testing.T) {
	var calls atomic.Int64
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		calls.Add(1)
		return planFor(in.MaxSide()), nil
	})
	p, out, err := c.Get("sys", inst(500))
	if err != nil || out != Miss {
		t.Fatalf("first Get = (%v, %v, %v), want miss", p, out, err)
	}
	if p.RTimeNs != 500 {
		t.Errorf("plan RTimeNs = %v, want 500", p.RTimeNs)
	}
	p2, out, err := c.Get("sys", inst(500))
	if err != nil || out != Hit {
		t.Fatalf("second Get outcome = %v (%v), want hit", out, err)
	}
	if p2 != p {
		t.Errorf("hit returned %+v, want %+v", p2, p)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("predict ran %d times, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
}

func TestSquareAndRectSpellingsShareEntries(t *testing.T) {
	var calls atomic.Int64
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		calls.Add(1)
		return planFor(in.MaxSide()), nil
	})
	if _, out, _ := c.Get("sys", plan.Instance{Dim: 700, TSize: 10, DSize: 1}); out != Miss {
		t.Fatalf("dim spelling: outcome %v, want miss", out)
	}
	if _, out, _ := c.Get("sys", plan.Instance{Rows: 700, Cols: 700, TSize: 10, DSize: 1}); out != Hit {
		t.Fatalf("rows/cols spelling: outcome %v, want hit", out)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("predict ran %d times, want 1", got)
	}
}

// TestConcurrentMissesCoalesce is the singleflight guarantee: N
// goroutines miss the same cold key while the predict is deliberately
// held open, and exactly one underlying predict runs.
func TestConcurrentMissesCoalesce(t *testing.T) {
	const n = 32
	var calls atomic.Int64
	release := make(chan struct{})
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		calls.Add(1)
		<-release
		return planFor(in.MaxSide()), nil
	})

	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	plans := make([]Plan, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, out, err := c.Get("sys", inst(1900))
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			outcomes[i], plans[i] = out, p
		}(i)
	}

	// Wait until every goroutine has registered against the in-flight
	// entry (the leader counts as the miss, the rest as coalesced), then
	// let the predict finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Misses+st.Coalesced == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never registered: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("predict ran %d times, want exactly 1", got)
	}
	misses, coalesced := 0, 0
	for i, out := range outcomes {
		switch out {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		default:
			t.Errorf("goroutine %d outcome %v", i, out)
		}
		if plans[i] != planFor(1900) {
			t.Errorf("goroutine %d plan %+v", i, plans[i])
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Errorf("misses = %d, coalesced = %d, want 1 and %d", misses, coalesced, n-1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLRUEvictionOrder: with capacity 2, touching A keeps it alive and
// inserting C evicts the least recently used B.
func TestLRUEvictionOrder(t *testing.T) {
	var calls atomic.Int64
	c := New(2, func(system string, in plan.Instance) (Plan, error) {
		calls.Add(1)
		return planFor(in.MaxSide()), nil
	})
	a, b, d := inst(100), inst(200), inst(300)
	c.Get("sys", a) // miss
	c.Get("sys", b) // miss
	c.Get("sys", a) // hit: A is now most recent
	c.Get("sys", d) // miss: evicts B
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats after eviction = %+v, want 1 eviction, size 2", st)
	}
	if _, out, _ := c.Get("sys", a); out != Hit {
		t.Errorf("A should have survived, got %v", out)
	}
	if _, out, _ := c.Get("sys", d); out != Hit {
		t.Errorf("C should be resident, got %v", out)
	}
	if _, out, _ := c.Get("sys", b); out != Miss {
		t.Errorf("B should have been evicted, got %v", out)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		if calls.Add(1) == 1 {
			return Plan{}, boom
		}
		return planFor(in.MaxSide()), nil
	})
	if _, _, err := c.Get("sys", inst(500)); !errors.Is(err, boom) {
		t.Fatalf("first Get err = %v, want boom", err)
	}
	if _, out, err := c.Get("sys", inst(500)); err != nil || out != Miss {
		t.Fatalf("retry = (%v, %v), want clean miss", out, err)
	}
	st := c.Stats()
	if st.Errors != 1 || st.Misses != 2 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 error, 2 misses, size 1", st)
	}
}

// TestPanickingPredictSettlesTheFlight: a predict that panics must not
// wedge the key — waiters get an error and a later Get retries.
func TestPanickingPredictSettlesTheFlight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		if calls.Add(1) == 1 {
			<-release
			panic("model exploded")
		}
		return planFor(in.MaxSide()), nil
	})

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Get("sys", inst(900))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Misses+st.Coalesced == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines never registered: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("goroutine %d err = %v, want predict-panicked error", i, err)
		}
	}
	// The key must not be wedged: the next Get runs a fresh predict.
	if _, out, err := c.Get("sys", inst(900)); err != nil || out != Miss {
		t.Fatalf("retry after panic = (%v, %v), want clean miss", out, err)
	}
}

func TestGetValidates(t *testing.T) {
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		return Plan{}, nil
	})
	if _, _, err := c.Get("sys", plan.Instance{Dim: 0, TSize: 1}); err == nil {
		t.Error("invalid instance must be rejected")
	}
	if _, _, err := c.Get("", inst(500)); err == nil {
		t.Error("empty system must be rejected")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Errorf("rejected Gets must not insert: %+v", st)
	}
}

func TestKeyStability(t *testing.T) {
	sq := plan.Instance{Dim: 700, TSize: 0.5, DSize: 0}
	rc := plan.Instance{Rows: 700, Cols: 700, TSize: 0.5, DSize: 0}
	if Key("s", sq) != Key("s", rc) {
		t.Errorf("square spellings differ: %q vs %q", Key("s", sq), Key("s", rc))
	}
	rect := plan.Instance{Rows: 600, Cols: 1400, TSize: 0.5, DSize: 0}
	if got, want := Key("s", rect), "s|600x1400|t=0.5|d=0"; got != want {
		t.Errorf("rect key = %q, want %q", got, want)
	}
}

// TestPutDoesNotRaceCoalescedReaders: Put must replace a settled entry
// rather than mutate it, because a coalesced Get that just woke may
// still be reading the old value outside the lock. Run under -race with
// Puts overlapping a held-open flight and its waiters.
func TestPutDoesNotRaceCoalescedReaders(t *testing.T) {
	release := make(chan struct{})
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		<-release
		return planFor(in.MaxSide()), nil
	})
	in := inst(800)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Get("sys", in); err != nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	// Wait for the flight to be populated, release it, and immediately
	// hammer Put on the same key while the waiters drain.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Lookups() < 8 {
		if time.Now().After(deadline) {
			t.Fatal("flight never formed")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < 100; i++ {
		if err := c.Put("sys", in, Plan{RTimeNs: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if _, out, _ := c.Get("sys", in); out != Hit {
		t.Errorf("key must remain resident, got %v", out)
	}
}

// TestPutRefreshesResident: Put on a resident key installs the new plan
// and promotes it.
func TestPutRefreshesResident(t *testing.T) {
	c := New(2, func(system string, in plan.Instance) (Plan, error) {
		return planFor(in.MaxSide()), nil
	})
	in := inst(400)
	c.Get("sys", in)
	fresh := Plan{RTimeNs: 42}
	if err := c.Put("sys", in, fresh); err != nil {
		t.Fatal(err)
	}
	p, out, _ := c.Get("sys", in)
	if out != Hit || p != fresh {
		t.Errorf("after Put: (%+v, %v), want refreshed hit", p, out)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Errorf("size = %d, want 1 (replace, not duplicate)", st.Size)
	}
}

// TestConcurrentMixedWorkload hammers the cache from many goroutines
// under -race: distinct keys, shared keys, and eviction pressure at once.
func TestConcurrentMixedWorkload(t *testing.T) {
	var calls atomic.Int64
	c := New(8, func(system string, in plan.Instance) (Plan, error) {
		calls.Add(1)
		return planFor(in.MaxSide()), nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dim := 100 + 100*((g+i)%12)
				p, _, err := c.Get(fmt.Sprintf("sys%d", i%2), inst(dim))
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if p != planFor(dim) {
					t.Errorf("wrong plan for dim %d: %+v", dim, p)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Lookups() != 16*200 {
		t.Errorf("lookups = %d, want %d", st.Lookups(), 16*200)
	}
	if st.Size > 8 {
		t.Errorf("size %d exceeds capacity 8", st.Size)
	}
}

// TestSystemStats: the per-system breakdown must attribute every
// counter to the system whose traffic caused it, including evictions
// and Put-only residency.
func TestSystemStats(t *testing.T) {
	fail := errors.New("predict failed")
	c := New(2, func(system string, in plan.Instance) (Plan, error) {
		if system == "broken" {
			return Plan{}, fail
		}
		return planFor(in.MaxSide()), nil
	})

	// sysA: one miss, one hit. sysB: one miss. broken: one error.
	c.Get("sysA", inst(100))
	c.Get("sysA", inst(100))
	c.Get("sysB", inst(200))
	if _, _, err := c.Get("broken", inst(300)); err == nil {
		t.Fatal("broken system must fail")
	}
	// Two more sysB misses overflow the capacity-2 cache; the LRU victim
	// is sysA's entry, then sysB's own oldest.
	c.Get("sysB", inst(400))
	c.Get("sysB", inst(500))

	st := c.SystemStats()
	a, b := st["sysA"], st["sysB"]
	if a.Hits != 1 || a.Misses != 1 || a.Errors != 0 {
		t.Errorf("sysA = %+v, want 1 hit 1 miss", a)
	}
	if a.Evictions != 1 || a.Size != 0 {
		t.Errorf("sysA = %+v, want its entry evicted", a)
	}
	if b.Misses != 3 || b.Evictions != 1 || b.Size != 2 {
		t.Errorf("sysB = %+v, want 3 misses 1 eviction size 2", b)
	}
	if br := st["broken"]; br.Errors != 1 || br.Misses != 1 || br.Size != 0 {
		t.Errorf("broken = %+v, want 1 miss 1 error", br)
	}
	if a.Capacity != 2 || b.Capacity != 2 {
		t.Errorf("capacity not propagated: %+v %+v", a, b)
	}

	// The aggregate must equal the sum of the parts.
	agg := c.Stats()
	var hits, misses, evs, errs uint64
	var size int
	for _, s := range st {
		hits += s.Hits
		misses += s.Misses
		evs += s.Evictions
		errs += s.Errors
		size += s.Size
	}
	if hits != agg.Hits || misses != agg.Misses || evs != agg.Evictions || errs != agg.Errors || size != agg.Size {
		t.Errorf("per-system sum (h%d m%d e%d x%d s%d) != aggregate %+v", hits, misses, evs, errs, size, agg)
	}

	// A system that only entered via Put still reports residency.
	if err := c.Put("warmed", inst(900), planFor(900)); err != nil {
		t.Fatal(err)
	}
	if w := c.SystemStats()["warmed"]; w.Size != 1 || w.Lookups() != 0 {
		t.Errorf("warmed = %+v, want size 1 with zero lookups", w)
	}
}

// TestSystemStatsBounded: per-system counters must not leak memory when
// a caller feeds unbounded distinct system names — overflow aggregates
// under OverflowSystem.
func TestSystemStatsBounded(t *testing.T) {
	c := New(4, func(system string, in plan.Instance) (Plan, error) {
		return planFor(in.MaxSide()), nil
	})
	const n = 1200
	for i := 0; i < n; i++ {
		if _, _, err := c.Get(fmt.Sprintf("sys-%04d", i), inst(100)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.SystemStats()
	// Bound: the tracked counters, the overflow bucket, and a Size-only
	// row per resident entry whose counters landed in the overflow.
	if limit := maxTrackedSystems + 1 + c.Capacity(); len(st) > limit {
		t.Errorf("tracked systems = %d, want <= %d", len(st), limit)
	}
	over := st[OverflowSystem]
	if over.Misses == 0 {
		t.Errorf("overflow bucket empty: %+v", over)
	}
	var misses uint64
	for _, s := range st {
		misses += s.Misses
	}
	if misses != n {
		t.Errorf("total misses across buckets = %d, want %d", misses, n)
	}
}

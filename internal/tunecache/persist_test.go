package tunecache

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/plan"
)

// TestPersistenceRoundTrip saves a populated cache and loads it into a
// fresh one: every plan (square and rectangular) must come back resident,
// with no predict calls needed to serve them.
func TestPersistenceRoundTrip(t *testing.T) {
	var calls atomic.Int64
	predict := func(system string, in plan.Instance) (Plan, error) {
		calls.Add(1)
		return Plan{Serial: in.MaxSide() < 300,
			Par:     plan.Params{CPUTile: 4, Band: in.MaxSide() / 2, GPUTile: 8, Halo: 3},
			RTimeNs: 1.5e9, SerialNs: 12e9}, nil
	}
	src := New(8, predict)
	insts := []plan.Instance{
		{Dim: 500, TSize: 100, DSize: 1},
		{Dim: 200, TSize: 0.5, DSize: 0},
		{Rows: 600, Cols: 1400, TSize: 750, DSize: 4},
	}
	want := make([]Plan, len(insts))
	for i, in := range insts {
		p, _, err := src.Get("i7-2600K", in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows": 600`) {
		t.Errorf("rect shape not persisted:\n%s", buf.String())
	}

	dst := New(8, predict)
	n, err := dst.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(insts) {
		t.Fatalf("loaded %d entries, want %d", n, len(insts))
	}
	before := calls.Load()
	for i, in := range insts {
		p, out, err := dst.Get("i7-2600K", in)
		if err != nil || out != Hit {
			t.Fatalf("instance %d: outcome %v (%v), want hit", i, out, err)
		}
		if p != want[i] {
			t.Errorf("instance %d: plan %+v, want %+v", i, p, want[i])
		}
	}
	if calls.Load() != before {
		t.Errorf("loading must not require predicts (ran %d)", calls.Load()-before)
	}
}

// TestPersistenceKeepsRecencyOrder: loading a 3-entry file into a
// 2-entry cache must keep the file's most recently used tail.
func TestPersistenceKeepsRecencyOrder(t *testing.T) {
	predict := func(system string, in plan.Instance) (Plan, error) {
		return Plan{Par: plan.Params{CPUTile: 1, Band: -1, GPUTile: 1, Halo: -1}}, nil
	}
	src := New(8, predict)
	a := plan.Instance{Dim: 100, TSize: 1, DSize: 0}
	b := plan.Instance{Dim: 200, TSize: 1, DSize: 0}
	d := plan.Instance{Dim: 300, TSize: 1, DSize: 0}
	src.Get("s", a)
	src.Get("s", b)
	src.Get("s", d)
	src.Get("s", a) // recency now: a, d, b

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(2, predict)
	if _, err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if _, out, _ := dst.Get("s", a); out != Hit {
		t.Errorf("most recent entry a missing: %v", out)
	}
	if _, out, _ := dst.Get("s", d); out != Hit {
		t.Errorf("second most recent entry d missing: %v", out)
	}
	if st := dst.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (entry b)", st.Evictions)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	c := New(4, nil)
	if _, err := c.Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON must fail")
	}
	if _, err := c.Load(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Error("wrong version must fail")
	}
	if _, err := c.Load(strings.NewReader(
		`{"version":1,"entries":[{"system":"s","dim":0,"tsize":1,"dsize":0}]}`)); err == nil {
		t.Error("invalid instance must fail")
	}
	// Params the library itself rejects (cpu_tile 0) must not load.
	if _, err := c.Load(strings.NewReader(
		`{"version":1,"entries":[{"system":"s","dim":500,"tsize":1,"dsize":0,"cpu_tile":0,"band":-1,"gpu_tile":1,"halo":-1}]}`)); err == nil {
		t.Error("invalid params must fail")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Errorf("failed loads must not insert: %+v", st)
	}
}

// TestLoadIsAtomic: a file with valid entries followed by a bad one must
// load nothing, so the warm-or-cold decision never lands in between.
func TestLoadIsAtomic(t *testing.T) {
	c := New(4, nil)
	doc := `{"version":1,"entries":[
	 {"system":"s","dim":500,"tsize":10,"dsize":1,"cpu_tile":8,"band":-1,"gpu_tile":1,"halo":-1,"rtime_ns":1},
	 {"system":"s","dim":700,"tsize":10,"dsize":1,"cpu_tile":0,"band":-1,"gpu_tile":1,"halo":-1,"rtime_ns":1}]}`
	n, err := c.Load(strings.NewReader(doc))
	if err == nil {
		t.Fatal("bad second entry must fail the load")
	}
	if n != 0 || c.Len() != 0 {
		t.Errorf("partial load: n=%d len=%d, want 0/0", n, c.Len())
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	predict := func(system string, in plan.Instance) (Plan, error) {
		return Plan{Par: plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1}, RTimeNs: 7}, nil
	}
	c := New(4, predict)
	c.Get("s", plan.Instance{Dim: 500, TSize: 10, DSize: 1})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2 := New(4, predict)
	if n, err := c2.LoadFile(path); err != nil || n != 1 {
		t.Fatalf("LoadFile = (%d, %v), want (1, nil)", n, err)
	}
	if _, out, _ := c2.Get("s", plan.Instance{Dim: 500, TSize: 10, DSize: 1}); out != Hit {
		t.Errorf("outcome %v, want hit", out)
	}
}

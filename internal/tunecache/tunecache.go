// Package tunecache provides the concurrency-safe plan cache behind the
// tuning service: the "train once, predict per instance" deployment story
// of the paper, made cheap enough to serve at request rates. Tuned
// decisions are cached by (system, instance shape) with LRU bounding, so
// repeated requests for the same workload cost a map lookup instead of a
// model evaluation, and concurrent misses on one key are deduplicated —
// a single predict runs while every other caller blocks on its result
// (the singleflight pattern). The cache persists to a versioned JSON
// file, letting a daemon restart warm.
package tunecache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/plan"
)

// DefaultCapacity bounds the cache when the caller does not.
const DefaultCapacity = 512

// Plan is a cached tuning decision: the tuner's prediction plus the
// modeled runtimes that contextualize it.
type Plan struct {
	// Serial is true when the parallelism gate chose the sequential
	// baseline.
	Serial bool
	// Par is the tuned parameter setting (meaningful when !Serial, and
	// also carries the fallback CPU tiling when Serial).
	Par plan.Params
	// RTimeNs is the modeled runtime of the decision in nanoseconds.
	RTimeNs float64
	// SerialNs is the modeled optimized sequential baseline in
	// nanoseconds, for speedup reporting.
	SerialNs float64
}

// PredictFunc computes a tuned plan on a cache miss. It is called exactly
// once per missing key regardless of how many callers are waiting.
type PredictFunc func(system string, inst plan.Instance) (Plan, error)

// Outcome classifies how a Get was served.
type Outcome int

const (
	// Hit: the plan was resident.
	Hit Outcome = iota
	// Miss: this caller ran the predict.
	Miss
	// Coalesced: another caller was already predicting this key; this
	// caller blocked on that in-flight result.
	Coalesced
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts Gets served from a resident entry.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that invoked the predict function — the number
	// of underlying tuner evaluations.
	Misses uint64 `json:"misses"`
	// Coalesced counts Gets that joined another caller's in-flight
	// predict instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Errors counts predicts that failed (failures are not cached).
	Errors uint64 `json:"errors"`
	// Size and Capacity describe the resident set.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// Lookups returns the total number of Gets observed.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses + s.Coalesced }

// entry is one cache slot. While the predict is in flight, done is open
// and elem is nil; once done closes, val/err are immutable and, on
// success, elem links the entry into the LRU list.
type entry struct {
	key  string
	sys  string
	inst plan.Instance
	done chan struct{}
	val  Plan
	err  error
	elem *list.Element
}

// Cache is a concurrency-safe LRU plan cache with singleflight miss
// deduplication. The zero value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	predict PredictFunc
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	stats   Stats
	bySys   map[string]*Stats
}

// New creates a cache bounded to capacity resident plans (DefaultCapacity
// when capacity <= 0) that fills misses through predict.
func New(capacity int, predict PredictFunc) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		predict: predict,
		entries: make(map[string]*entry),
		lru:     list.New(),
		bySys:   make(map[string]*Stats),
	}
}

// maxTrackedSystems bounds the per-system counter map: unlike the
// entries, counters survive eviction, so a caller feeding unbounded
// distinct system names must not leak memory. Beyond the bound, new
// names aggregate under OverflowSystem.
const maxTrackedSystems = 1024

// OverflowSystem is the SystemStats key aggregating counters of systems
// beyond the tracking bound.
const OverflowSystem = "(other)"

// sysStatsLocked returns (creating if needed) the named system's counter
// block. Caller holds c.mu.
func (c *Cache) sysStatsLocked(system string) *Stats {
	if st, ok := c.bySys[system]; ok {
		return st
	}
	if len(c.bySys) >= maxTrackedSystems {
		if st, ok := c.bySys[OverflowSystem]; ok {
			return st
		}
		system = OverflowSystem
	}
	st := &Stats{}
	c.bySys[system] = st
	return st
}

// Key returns the cache key for a system/instance pair: the system name
// joined with the instance's stable canonical encoding.
func Key(system string, inst plan.Instance) string {
	return system + "|" + inst.CacheKey()
}

// Get returns the tuned plan for inst on the named system, predicting it
// on a miss. The returned Outcome reports whether the plan was resident
// (Hit), computed by this call (Miss), or shared from a concurrent
// caller's in-flight computation (Coalesced). Predict errors are returned
// to every waiting caller and are not cached, so a later Get retries.
func (c *Cache) Get(system string, inst plan.Instance) (Plan, Outcome, error) {
	if err := inst.Validate(); err != nil {
		return Plan{}, Miss, err
	}
	if system == "" {
		return Plan{}, Miss, fmt.Errorf("tunecache: empty system name")
	}
	inst = inst.Normalize()
	k := Key(system, inst)

	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		if e.elem != nil {
			// Resident.
			c.lru.MoveToFront(e.elem)
			c.stats.Hits++
			c.sysStatsLocked(system).Hits++
			val := e.val
			c.mu.Unlock()
			return val, Hit, nil
		}
		// In flight: join it.
		c.stats.Coalesced++
		c.sysStatsLocked(system).Coalesced++
		c.mu.Unlock()
		<-e.done
		return e.val, Coalesced, e.err
	}

	// Miss: this caller leads the flight.
	e := &entry{key: k, sys: system, inst: inst, done: make(chan struct{})}
	c.entries[k] = e
	c.stats.Misses++
	c.sysStatsLocked(system).Misses++
	c.mu.Unlock()

	// A panicking predict must still settle the flight, or every waiter
	// (and every future Get for the key) would block forever on done;
	// convert the panic to an error delivered to all of them.
	val, err := func() (v Plan, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("tunecache: predict panicked: %v", r)
			}
		}()
		return c.predict(system, inst)
	}()

	c.mu.Lock()
	e.val, e.err = val, err
	if err != nil {
		c.stats.Errors++
		c.sysStatsLocked(system).Errors++
		delete(c.entries, k)
	} else {
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	close(e.done)
	c.mu.Unlock()
	return val, Miss, err
}

// Put inserts a plan directly (cache warming; also used by Load). An
// existing resident entry for the key is refreshed and promoted; an
// in-flight entry is left alone — the flight's result wins.
func (c *Cache) Put(system string, inst plan.Instance, p Plan) error {
	if err := inst.Validate(); err != nil {
		return err
	}
	if system == "" {
		return fmt.Errorf("tunecache: empty system name")
	}
	inst = inst.Normalize()
	k := Key(system, inst)

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[k]; ok {
		if old.elem == nil {
			return nil // in flight; do not race its result
		}
		// Replace rather than mutate: a coalesced Get that woke on
		// old.done may still be reading old.val outside the lock, so a
		// settled entry must stay immutable forever.
		c.lru.Remove(old.elem)
		delete(c.entries, k)
	}
	e := &entry{key: k, sys: system, inst: inst, val: p, done: make(chan struct{})}
	close(e.done)
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.evictLocked()
	return nil
}

// evictLocked drops least-recently-used resident entries until the bound
// holds. Caller holds c.mu.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.stats.Evictions++
		c.sysStatsLocked(e.sys).Evictions++
	}
}

// Len returns the number of resident plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Capacity returns the LRU bound.
func (c *Cache) Capacity() int { return c.cap }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.lru.Len()
	s.Capacity = c.cap
	return s
}

// SystemStats returns per-system snapshots of the counters: how each
// served platform's traffic is hitting the cache. Size counts that
// system's resident plans; Capacity is the shared LRU bound. Systems
// that only ever entered via Put/Load appear with zero lookup counters
// but a non-zero Size.
func (c *Cache) SystemStats() map[string]Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	sizes := make(map[string]int)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		sizes[el.Value.(*entry).sys]++
	}
	out := make(map[string]Stats, len(c.bySys))
	for sys, st := range c.bySys {
		s := *st
		s.Size = sizes[sys]
		s.Capacity = c.cap
		out[sys] = s
	}
	for sys, n := range sizes {
		if _, ok := out[sys]; !ok {
			out[sys] = Stats{Size: n, Capacity: c.cap}
		}
	}
	return out
}

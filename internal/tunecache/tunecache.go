// Package tunecache provides the concurrency-safe plan cache behind the
// tuning service: the "train once, predict per instance" deployment story
// of the paper, made cheap enough to serve at request rates. Tuned
// decisions are cached by (system, instance shape) with LRU bounding, so
// repeated requests for the same workload cost a map lookup instead of a
// model evaluation, and concurrent misses on one key are deduplicated —
// a single predict runs while every other caller blocks on its result
// (the singleflight pattern). The cache persists to a versioned JSON
// file, letting a daemon restart warm.
//
// The cache is sharded: keys hash onto independently locked shards
// (default GOMAXPROCS, see NewSharded), each with its own LRU list,
// entry map and in-flight singleflight table, so concurrent lookups on
// different keys never contend on one mutex. Recency is tracked by a
// global logical clock, letting Save merge the shards back into a single
// least-to-most-recent order regardless of how keys were distributed.
// Eviction is per shard (each shard holds its slice of the capacity), so
// the LRU bound is exact per shard and approximate globally; a cache
// small enough that sharding could distort eviction collapses to a
// single shard and behaves exactly like a classic LRU.
package tunecache

import (
	"container/list"
	"context"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
)

// DefaultCapacity bounds the cache when the caller does not.
const DefaultCapacity = 512

// minShardCapacity is the smallest per-shard LRU bound worth having:
// below it, sharding would distort eviction more than it relieves
// contention, so the shard count is clamped to capacity/minShardCapacity
// (and a tiny cache runs unsharded with exact LRU semantics).
const minShardCapacity = 8

// Plan is a cached tuning decision: the predictor's output plus the
// modeled runtimes that contextualize it. The plan is backend-agnostic —
// tree and bilinear predictors fill the same fields.
type Plan struct {
	// Serial is true when the parallelism gate chose the sequential
	// baseline.
	Serial bool
	// Par is the tuned parameter setting (meaningful when !Serial, and
	// also carries the fallback CPU tiling when Serial).
	Par plan.Params
	// RTimeNs is the modeled runtime of the decision in nanoseconds.
	RTimeNs float64
	// SerialNs is the modeled optimized sequential baseline in
	// nanoseconds, for speedup reporting.
	SerialNs float64
}

// PredictFunc computes a tuned plan on a cache miss — typically one
// core.Predictor evaluation, whatever the backend kind. It is called
// exactly once per missing key regardless of how many callers are
// waiting.
type PredictFunc func(system string, inst plan.Instance) (Plan, error)

// PredictCtxFunc is the context-aware PredictFunc: ctx is the context
// of the GetCtx call that leads the miss's singleflight (coalesced
// waiters share the leader's evaluation, so only the leader's context —
// and therefore its trace span — reaches the predict), or
// context.Background() for plain Get callers. The context is for
// telemetry propagation; the predict is not expected to abort on
// cancellation, since its result is shared with unrelated waiters.
type PredictCtxFunc func(ctx context.Context, system string, inst plan.Instance) (Plan, error)

// Outcome classifies how a Get was served.
type Outcome int

const (
	// Hit: the plan was resident.
	Hit Outcome = iota
	// Miss: this caller ran the predict.
	Miss
	// Coalesced: another caller was already predicting this key; this
	// caller blocked on that in-flight result.
	Coalesced
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts Gets served from a resident entry.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that invoked the predict function — the number
	// of underlying tuner evaluations.
	Misses uint64 `json:"misses"`
	// Coalesced counts Gets that joined another caller's in-flight
	// predict instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries dropped by targeted invalidation
	// (InvalidateSystem) — model promotions, not capacity pressure.
	Invalidations uint64 `json:"invalidations"`
	// Errors counts predicts that failed (failures are not cached).
	Errors uint64 `json:"errors"`
	// Size and Capacity describe the resident set.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// Lookups returns the total number of Gets observed.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses + s.Coalesced }

// add accumulates another counter block (shard aggregation).
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.Errors += o.Errors
	s.Size += o.Size
}

// entry is one cache slot. While the predict is in flight, done is open
// and elem is nil; once done closes, val/err are immutable and, on
// success, elem links the entry into the shard's LRU list. stamp is the
// global-clock reading of the last touch (guarded by the shard mutex).
// dropped (also guarded by the shard mutex) marks an in-flight entry
// invalidated mid-predict: the flight still delivers its value to
// waiters, but must not insert it into the LRU.
type entry struct {
	key     string
	sys     string
	inst    plan.Instance
	done    chan struct{}
	val     Plan
	err     error
	elem    *list.Element
	stamp   uint64
	dropped bool
}

// shard is one independently locked slice of the cache: its own entry
// map, LRU list, in-flight table (entries with a nil elem) and counters.
type shard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	stats   Stats
	bySys   map[string]*Stats
}

// Cache is a concurrency-safe sharded LRU plan cache with singleflight
// miss deduplication. The zero value is not usable; construct with New
// or NewSharded.
type Cache struct {
	cap     int
	predict PredictCtxFunc
	shards  []*shard
	seed    maphash.Seed
	// clock is the global recency counter: every touch (hit, insert,
	// Put) stamps the entry, so Save can merge per-shard LRU lists into
	// one global least-to-most-recent order.
	clock atomic.Uint64
}

// New creates a cache bounded to capacity resident plans (DefaultCapacity
// when capacity <= 0) that fills misses through predict, sharded the
// default way (see NewSharded with shards = 0).
func New(capacity int, predict PredictFunc) *Cache {
	return NewSharded(capacity, 0, predict)
}

// NewSharded creates a cache bounded to capacity resident plans
// (DefaultCapacity when capacity <= 0) split across the given number of
// independently locked shards. shards <= 0 selects GOMAXPROCS. The
// count is clamped so every shard keeps a useful LRU slice (at least
// minShardCapacity entries), which means a small cache runs unsharded
// and keeps exact global LRU semantics.
func NewSharded(capacity, shards int, predict PredictFunc) *Cache {
	var fill PredictCtxFunc
	if predict != nil {
		fill = func(_ context.Context, system string, inst plan.Instance) (Plan, error) {
			return predict(system, inst)
		}
	}
	return NewShardedCtx(capacity, shards, fill)
}

// NewShardedCtx is NewSharded with a context-aware predict, for callers
// that thread trace spans through the miss path (see PredictCtxFunc).
func NewShardedCtx(capacity, shards int, predict PredictCtxFunc) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if max := capacity / minShardCapacity; shards > max {
		shards = max
	}
	if shards < 1 {
		shards = 1
	}
	c := &Cache{
		cap:     capacity,
		predict: predict,
		shards:  make([]*shard, shards),
		seed:    maphash.MakeSeed(),
	}
	// Distribute the capacity so the shard bounds sum exactly to the
	// requested total.
	base, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i] = &shard{
			cap:     sc,
			entries: make(map[string]*entry),
			lru:     list.New(),
			bySys:   make(map[string]*Stats),
		}
	}
	return c
}

// shardFor hashes a key onto its shard.
func (c *Cache) shardFor(key string) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	return c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Shards returns the number of independently locked shards.
func (c *Cache) Shards() int { return len(c.shards) }

// ShardIndex reports which shard (an index into ShardStats) serves the
// key for (system, inst), so request traces can name the shard a lookup
// landed on.
func (c *Cache) ShardIndex(system string, inst plan.Instance) int {
	if len(c.shards) == 1 {
		return 0
	}
	k := Key(system, inst.Normalize())
	return int(maphash.String(c.seed, k) % uint64(len(c.shards)))
}

// touch stamps an entry with the current global clock reading. Caller
// holds the entry's shard mutex.
func (c *Cache) touch(e *entry) { e.stamp = c.clock.Add(1) }

// maxTrackedSystems bounds each shard's per-system counter map: unlike
// the entries, counters survive eviction, so a caller feeding unbounded
// distinct system names must not leak memory. Beyond the bound, new
// names aggregate under OverflowSystem.
const maxTrackedSystems = 1024

// OverflowSystem is the SystemStats key aggregating counters of systems
// beyond the tracking bound.
const OverflowSystem = "(other)"

// sysStatsLocked returns (creating if needed) the named system's counter
// block. Caller holds s.mu.
func (s *shard) sysStatsLocked(system string) *Stats {
	if st, ok := s.bySys[system]; ok {
		return st
	}
	if len(s.bySys) >= maxTrackedSystems {
		if st, ok := s.bySys[OverflowSystem]; ok {
			return st
		}
		system = OverflowSystem
	}
	st := &Stats{}
	s.bySys[system] = st
	return st
}

// Key returns the cache key for a system/instance pair: the system name
// joined with the instance's stable canonical encoding.
func Key(system string, inst plan.Instance) string {
	return system + "|" + inst.CacheKey()
}

// Get returns the tuned plan for inst on the named system, predicting it
// on a miss. The returned Outcome reports whether the plan was resident
// (Hit), computed by this call (Miss), or shared from a concurrent
// caller's in-flight computation (Coalesced). Predict errors are returned
// to every waiting caller and are not cached, so a later Get retries.
func (c *Cache) Get(system string, inst plan.Instance) (Plan, Outcome, error) {
	return c.GetCtx(context.Background(), system, inst)
}

// GetCtx is Get with a caller context that reaches the predict when
// this call leads the miss's singleflight, letting a request's trace
// span chain through the model evaluation (see PredictCtxFunc).
func (c *Cache) GetCtx(ctx context.Context, system string, inst plan.Instance) (Plan, Outcome, error) {
	if err := inst.Validate(); err != nil {
		return Plan{}, Miss, err
	}
	if system == "" {
		return Plan{}, Miss, fmt.Errorf("tunecache: empty system name")
	}
	inst = inst.Normalize()
	k := Key(system, inst)
	s := c.shardFor(k)

	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		if e.elem != nil {
			// Resident.
			s.lru.MoveToFront(e.elem)
			c.touch(e)
			s.stats.Hits++
			s.sysStatsLocked(system).Hits++
			val := e.val
			s.mu.Unlock()
			return val, Hit, nil
		}
		// In flight: join it.
		s.stats.Coalesced++
		s.sysStatsLocked(system).Coalesced++
		s.mu.Unlock()
		<-e.done
		return e.val, Coalesced, e.err
	}

	// Miss: this caller leads the flight.
	e := &entry{key: k, sys: system, inst: inst, done: make(chan struct{})}
	s.entries[k] = e
	s.stats.Misses++
	s.sysStatsLocked(system).Misses++
	s.mu.Unlock()

	// A panicking predict must still settle the flight, or every waiter
	// (and every future Get for the key) would block forever on done;
	// convert the panic to an error delivered to all of them.
	val, err := func() (v Plan, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("tunecache: predict panicked: %v", r)
			}
		}()
		return c.predict(ctx, system, inst)
	}()

	s.mu.Lock()
	e.val, e.err = val, err
	if err != nil {
		s.stats.Errors++
		s.sysStatsLocked(system).Errors++
		// Guard the delete: if this flight was invalidated mid-predict,
		// the key may already belong to a newer entry that must survive.
		if cur, ok := s.entries[k]; ok && cur == e {
			delete(s.entries, k)
		}
	} else if !e.dropped {
		e.elem = s.lru.PushFront(e)
		c.touch(e)
		s.evictLocked()
	}
	close(e.done)
	s.mu.Unlock()
	return val, Miss, err
}

// Put inserts a plan directly (cache warming; also used by Load). An
// existing resident entry for the key is refreshed and promoted; an
// in-flight entry is left alone — the flight's result wins.
func (c *Cache) Put(system string, inst plan.Instance, p Plan) error {
	if err := inst.Validate(); err != nil {
		return err
	}
	if system == "" {
		return fmt.Errorf("tunecache: empty system name")
	}
	inst = inst.Normalize()
	k := Key(system, inst)
	s := c.shardFor(k)

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[k]; ok {
		if old.elem == nil {
			return nil // in flight; do not race its result
		}
		// Replace rather than mutate: a coalesced Get that woke on
		// old.done may still be reading old.val outside the lock, so a
		// settled entry must stay immutable forever.
		s.lru.Remove(old.elem)
		delete(s.entries, k)
	}
	e := &entry{key: k, sys: system, inst: inst, val: p, done: make(chan struct{})}
	close(e.done)
	e.elem = s.lru.PushFront(e)
	c.touch(e)
	s.entries[k] = e
	s.evictLocked()
	return nil
}

// InvalidateSystem removes every cache entry for the named system and
// returns how many it dropped — the targeted invalidation behind model
// promotion: when a new tuner generation starts serving a system, its
// cached decisions are stale, but flushing the whole cache would punish
// every other system's hit rate for one system's promotion, so only the
// affected system's entries go. In-flight predicts for the system are
// marked dropped: their waiters still receive the computed value (their
// requests raced the promotion and get the old model's answer, as any
// pre-promotion request does) but the result is not cached, so the next
// lookup predicts against the new model. The global recency clock is
// advanced so surviving entries' later touches sort strictly after the
// promotion in a saved snapshot.
func (c *Cache) InvalidateSystem(system string) int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for k, e := range s.entries {
			if e.sys != system {
				continue
			}
			if e.elem != nil {
				s.lru.Remove(e.elem)
			} else {
				e.dropped = true
			}
			delete(s.entries, k)
			n++
			s.stats.Invalidations++
			s.sysStatsLocked(system).Invalidations++
		}
		s.mu.Unlock()
	}
	if n > 0 {
		c.clock.Add(1)
	}
	return n
}

// evictLocked drops least-recently-used resident entries until the
// shard's bound holds. Caller holds s.mu.
func (s *shard) evictLocked() {
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.stats.Evictions++
		s.sysStatsLocked(e.sys).Evictions++
	}
}

// Len returns the number of resident plans.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total LRU bound across all shards.
func (c *Cache) Capacity() int { return c.cap }

// Stats returns a snapshot of the counters, aggregated across shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st := s.stats
		st.Size = s.lru.Len()
		s.mu.Unlock()
		out.add(st)
	}
	out.Capacity = c.cap
	return out
}

// ShardStats returns a per-shard snapshot of the counters, in shard
// order. This is the telemetry surface behind the per-shard series on
// /metrics: contention or skew shows up as one shard's hit/miss mix
// diverging from its peers'. Capacity is left zero — the LRU bound is
// shared across shards, not partitioned.
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		st := s.stats
		st.Size = s.lru.Len()
		s.mu.Unlock()
		out[i] = st
	}
	return out
}

// shardLens returns the resident-entry count of every shard (for the
// distribution sanity tests).
func (c *Cache) shardLens() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = s.lru.Len()
		s.mu.Unlock()
	}
	return out
}

// SystemStats returns per-system snapshots of the counters, aggregated
// across shards: how each served platform's traffic is hitting the
// cache. Size counts that system's resident plans; Capacity is the
// shared total bound. Systems that only ever entered via Put/Load appear
// with zero lookup counters but a non-zero Size.
func (c *Cache) SystemStats() map[string]Stats {
	out := make(map[string]Stats)
	for _, s := range c.shards {
		s.mu.Lock()
		sizes := make(map[string]int)
		for el := s.lru.Front(); el != nil; el = el.Next() {
			sizes[el.Value.(*entry).sys]++
		}
		for sys, st := range s.bySys {
			agg := out[sys]
			agg.add(Stats{
				Hits: st.Hits, Misses: st.Misses, Coalesced: st.Coalesced,
				Evictions: st.Evictions, Invalidations: st.Invalidations,
				Errors: st.Errors, Size: sizes[sys],
			})
			out[sys] = agg
			delete(sizes, sys)
		}
		for sys, n := range sizes {
			agg := out[sys]
			agg.Size += n
			out[sys] = agg
		}
		s.mu.Unlock()
	}
	for sys, st := range out {
		st.Capacity = c.cap
		out[sys] = st
	}
	return out
}

package tunecache

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/plan"
)

// Cache persistence follows the style of the tuner files written by
// core.(*Tuner).Save: a versioned JSON document with explicit snake_case
// fields, small enough to inspect by hand. Instance shapes keep both
// square and rectangular spellings, mirroring the search-CSV dim column
// (Instance.ShapeString).

const cacheFormatVersion = 1

// entryDTO is the on-disk form of one cached plan.
type entryDTO struct {
	System string `json:"system"`
	// Dim is set for square instances; Rows/Cols for rectangular ones
	// (the same convention as the search CSV's dim column).
	Dim      int     `json:"dim,omitempty"`
	Rows     int     `json:"rows,omitempty"`
	Cols     int     `json:"cols,omitempty"`
	TSize    float64 `json:"tsize"`
	DSize    int     `json:"dsize"`
	Serial   bool    `json:"serial"`
	CPUTile  int     `json:"cpu_tile"`
	Band     int     `json:"band"`
	GPUTile  int     `json:"gpu_tile"`
	Halo     int     `json:"halo"`
	RTimeNs  float64 `json:"rtime_ns"`
	SerialNs float64 `json:"serial_ns"`
}

// cacheDTO is the on-disk form of the whole cache.
type cacheDTO struct {
	Version int        `json:"version"`
	Entries []entryDTO `json:"entries"`
}

// Save writes every resident plan to w as versioned JSON, least recently
// used first, so that a Load into a fresh cache reproduces the recency
// order (the last entry loaded becomes the most recent).
func (c *Cache) Save(w io.Writer) error {
	c.mu.Lock()
	dto := cacheDTO{Version: cacheFormatVersion}
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		d := entryDTO{
			System: e.sys, TSize: e.inst.TSize, DSize: e.inst.DSize,
			Serial: e.val.Serial, CPUTile: e.val.Par.CPUTile,
			Band: e.val.Par.Band, GPUTile: e.val.Par.GPUTile, Halo: e.val.Par.Halo,
			RTimeNs: e.val.RTimeNs, SerialNs: e.val.SerialNs,
		}
		if rows, cols := e.inst.Shape(); rows == cols {
			d.Dim = rows
		} else {
			d.Rows, d.Cols = rows, cols
		}
		dto.Entries = append(dto.Entries, d)
	}
	c.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(dto); err != nil {
		return fmt.Errorf("tunecache: encoding cache: %w", err)
	}
	return nil
}

// Load reads a document written by Save and warms the cache with its
// entries, in order. It returns the number of plans loaded. Loading is
// all-or-nothing: every entry is validated — the instance, and the
// params via plan.Build, so a corrupt file cannot inject settings the
// library itself rejects — before any is inserted. Entries beyond the
// capacity evict in the usual LRU order, so loading a large file into a
// small cache keeps the file's most recent tail.
func (c *Cache) Load(r io.Reader) (int, error) {
	var dto cacheDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return 0, fmt.Errorf("tunecache: decoding cache: %w", err)
	}
	if dto.Version != cacheFormatVersion {
		return 0, fmt.Errorf("tunecache: cache format version %d, want %d", dto.Version, cacheFormatVersion)
	}
	type staged struct {
		sys  string
		inst plan.Instance
		p    Plan
	}
	entries := make([]staged, 0, len(dto.Entries))
	for i, d := range dto.Entries {
		inst := plan.Instance{Dim: d.Dim, Rows: d.Rows, Cols: d.Cols, TSize: d.TSize, DSize: d.DSize}
		p := Plan{
			Serial:   d.Serial,
			Par:      plan.Params{CPUTile: d.CPUTile, Band: d.Band, GPUTile: d.GPUTile, Halo: d.Halo},
			RTimeNs:  d.RTimeNs,
			SerialNs: d.SerialNs,
		}
		if d.System == "" {
			return 0, fmt.Errorf("tunecache: entry %d: empty system name", i)
		}
		if err := inst.Validate(); err != nil {
			return 0, fmt.Errorf("tunecache: entry %d: %w", i, err)
		}
		if _, err := plan.Build(inst, p.Par); err != nil {
			return 0, fmt.Errorf("tunecache: entry %d: %w", i, err)
		}
		entries = append(entries, staged{sys: d.System, inst: inst, p: p})
	}
	for _, e := range entries {
		if err := c.Put(e.sys, e.inst, e.p); err != nil {
			// Unreachable: every entry was validated above.
			return 0, err
		}
	}
	return len(entries), nil
}

// SaveFile writes the cache to path atomically (unique temp file +
// rename), so a crash mid-write can never leave a truncated file behind
// for the next start to choke on, and concurrent savers cannot corrupt
// each other's temp file — last rename wins whole.
func (c *Cache) SaveFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("tunecache: %w", err)
	}
	tmp := f.Name()
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tunecache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tunecache: %w", err)
	}
	return nil
}

// LoadFile warms the cache from a file written by SaveFile.
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("tunecache: %w", err)
	}
	defer f.Close()
	return c.Load(f)
}

package tunecache

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/plan"
)

// Cache persistence follows the style of the tuner files written by
// core.SavePredictor: a versioned JSON document with explicit snake_case
// fields (and, there, a kind discriminator), small enough to inspect by
// hand. Instance shapes keep both
// square and rectangular spellings, mirroring the search-CSV dim column
// (Instance.ShapeString).
//
// Format history:
//
//   - Version 1: entries of a single-lock cache, least recently used
//     first (positional recency).
//   - Version 2: written by the sharded cache. The entry layout is
//     unchanged and still positional (least recently used first), but
//     the order is the *global* recency merge across shards (via the
//     cache's logical clock), and the document records the writer's
//     shard count as an informational "shards" field. Load accepts both
//     versions, and a file round-trips across any shard-count change —
//     the order does not depend on how keys hashed onto shards.
const (
	cacheFormatVersion   = 2
	cacheFormatVersionV1 = 1
)

// entryDTO is the on-disk form of one cached plan.
type entryDTO struct {
	System string `json:"system"`
	// Dim is set for square instances; Rows/Cols for rectangular ones
	// (the same convention as the search CSV's dim column).
	Dim      int     `json:"dim,omitempty"`
	Rows     int     `json:"rows,omitempty"`
	Cols     int     `json:"cols,omitempty"`
	TSize    float64 `json:"tsize"`
	DSize    int     `json:"dsize"`
	Serial   bool    `json:"serial"`
	CPUTile  int     `json:"cpu_tile"`
	Band     int     `json:"band"`
	GPUTile  int     `json:"gpu_tile"`
	Halo     int     `json:"halo"`
	RTimeNs  float64 `json:"rtime_ns"`
	SerialNs float64 `json:"serial_ns"`
}

// cacheDTO is the on-disk form of the whole cache.
type cacheDTO struct {
	Version int `json:"version"`
	// Shards records the writer's shard count (version >= 2;
	// informational — a file loads into a cache of any shard count).
	Shards  int        `json:"shards,omitempty"`
	Entries []entryDTO `json:"entries"`
}

// Save writes every resident plan to w as versioned JSON, least recently
// used first in the global (cross-shard) recency order, so that a Load
// into a fresh cache reproduces the recency (the last entry loaded
// becomes the most recent) regardless of either cache's shard count.
func (c *Cache) Save(w io.Writer) error {
	type stamped struct {
		dto   entryDTO
		stamp uint64
	}
	var all []stamped
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			d := entryDTO{
				System: e.sys, TSize: e.inst.TSize, DSize: e.inst.DSize,
				Serial: e.val.Serial, CPUTile: e.val.Par.CPUTile,
				Band: e.val.Par.Band, GPUTile: e.val.Par.GPUTile, Halo: e.val.Par.Halo,
				RTimeNs: e.val.RTimeNs, SerialNs: e.val.SerialNs,
			}
			if rows, cols := e.inst.Shape(); rows == cols {
				d.Dim = rows
			} else {
				d.Rows, d.Cols = rows, cols
			}
			all = append(all, stamped{dto: d, stamp: e.stamp})
		}
		s.mu.Unlock()
	}
	// Global clock stamps are unique and monotone, so ascending order is
	// the merged least-to-most-recent order across every shard.
	sort.Slice(all, func(i, j int) bool { return all[i].stamp < all[j].stamp })
	dto := cacheDTO{Version: cacheFormatVersion, Shards: len(c.shards)}
	dto.Entries = make([]entryDTO, len(all))
	for i, s := range all {
		dto.Entries[i] = s.dto
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(dto); err != nil {
		return fmt.Errorf("tunecache: encoding cache: %w", err)
	}
	return nil
}

// Load reads a document written by Save — the current version-2 format
// or a version-1 file from a pre-sharding daemon (the entry layout is
// identical) — and warms the cache with its entries, in order. It
// returns the number of plans loaded. Loading is all-or-nothing: every
// entry is validated — the instance, and the params via plan.Build, so a
// corrupt file cannot inject settings the library itself rejects —
// before any is inserted. Entries beyond the capacity evict in the usual
// per-shard LRU order, so loading a large file into a small cache keeps
// the file's most recent tail (exactly for an unsharded cache,
// approximately across shards).
func (c *Cache) Load(r io.Reader) (int, error) {
	var dto cacheDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return 0, fmt.Errorf("tunecache: decoding cache: %w", err)
	}
	if dto.Version != cacheFormatVersion && dto.Version != cacheFormatVersionV1 {
		return 0, fmt.Errorf("tunecache: cache format version %d, want %d or %d",
			dto.Version, cacheFormatVersionV1, cacheFormatVersion)
	}
	type staged struct {
		sys  string
		inst plan.Instance
		p    Plan
	}
	entries := make([]staged, 0, len(dto.Entries))
	for i, d := range dto.Entries {
		inst := plan.Instance{Dim: d.Dim, Rows: d.Rows, Cols: d.Cols, TSize: d.TSize, DSize: d.DSize}
		p := Plan{
			Serial:   d.Serial,
			Par:      plan.Params{CPUTile: d.CPUTile, Band: d.Band, GPUTile: d.GPUTile, Halo: d.Halo},
			RTimeNs:  d.RTimeNs,
			SerialNs: d.SerialNs,
		}
		if d.System == "" {
			return 0, fmt.Errorf("tunecache: entry %d: empty system name", i)
		}
		if err := inst.Validate(); err != nil {
			return 0, fmt.Errorf("tunecache: entry %d: %w", i, err)
		}
		if _, err := plan.Build(inst, p.Par); err != nil {
			return 0, fmt.Errorf("tunecache: entry %d: %w", i, err)
		}
		entries = append(entries, staged{sys: d.System, inst: inst, p: p})
	}
	for _, e := range entries {
		if err := c.Put(e.sys, e.inst, e.p); err != nil {
			// Unreachable: every entry was validated above.
			return 0, err
		}
	}
	return len(entries), nil
}

// SaveFile writes the cache to path atomically (unique temp file +
// rename), so a crash mid-write can never leave a truncated file behind
// for the next start to choke on, and concurrent savers cannot corrupt
// each other's temp file — last rename wins whole.
func (c *Cache) SaveFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("tunecache: %w", err)
	}
	tmp := f.Name()
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tunecache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tunecache: %w", err)
	}
	return nil
}

// LoadFile warms the cache from a file written by SaveFile.
func (c *Cache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("tunecache: %w", err)
	}
	defer f.Close()
	return c.Load(f)
}

package tunecache

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/plan"
)

func invInst(dim int) plan.Instance { return plan.Instance{Dim: dim, TSize: 200, DSize: 1} }

// TestInvalidateSystemTargeted proves the promotion-invalidation
// contract: only the named system's entries drop, other systems keep
// their resident plans and their hit counters untouched.
func TestInvalidateSystemTargeted(t *testing.T) {
	c := NewSharded(256, 4, func(system string, inst plan.Instance) (Plan, error) {
		return Plan{RTimeNs: float64(inst.Dim)}, nil
	})
	for dim := 100; dim < 116; dim++ {
		for _, sys := range []string{"alpha", "beta"} {
			if _, _, err := c.Get(sys, invInst(dim)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm hit counters on both systems.
	for dim := 100; dim < 116; dim++ {
		c.Get("alpha", invInst(dim))
		c.Get("beta", invInst(dim))
	}
	before := c.SystemStats()
	if before["beta"].Hits != 16 || before["beta"].Size != 16 {
		t.Fatalf("beta warmup stats = %+v", before["beta"])
	}

	n := c.InvalidateSystem("alpha")
	if n != 16 {
		t.Fatalf("invalidated %d entries, want 16", n)
	}

	after := c.SystemStats()
	if after["alpha"].Size != 0 || after["alpha"].Invalidations != 16 {
		t.Fatalf("alpha post-invalidation stats = %+v", after["alpha"])
	}
	if after["beta"].Size != 16 || after["beta"].Hits != before["beta"].Hits || after["beta"].Invalidations != 0 {
		t.Fatalf("beta must be untouched: before %+v after %+v", before["beta"], after["beta"])
	}
	// Beta still hits; alpha re-predicts.
	if _, out, _ := c.Get("beta", invInst(100)); out != Hit {
		t.Fatalf("beta lookup = %v, want Hit", out)
	}
	if _, out, _ := c.Get("alpha", invInst(100)); out != Miss {
		t.Fatalf("alpha lookup = %v, want Miss", out)
	}
	if got := c.Stats().Invalidations; got != 16 {
		t.Fatalf("aggregate Invalidations = %d, want 16", got)
	}

	if c.InvalidateSystem("gamma") != 0 {
		t.Fatal("unknown system must invalidate nothing")
	}
}

// TestInvalidateSystemInFlight invalidates while a predict is in
// flight: the waiters still get the value, but it must not be cached —
// the next lookup predicts against the new model.
func TestInvalidateSystemInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	c := NewSharded(64, 1, func(system string, inst plan.Instance) (Plan, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
		}
		return Plan{RTimeNs: float64(calls.Load())}, nil
	})

	done := make(chan Plan, 1)
	go func() {
		p, _, _ := c.Get("alpha", invInst(100))
		done <- p
	}()
	<-started
	if n := c.InvalidateSystem("alpha"); n != 1 {
		t.Fatalf("invalidated %d, want the 1 in-flight entry", n)
	}
	close(release)
	if p := <-done; p.RTimeNs != 1 {
		t.Fatalf("in-flight waiter got %+v, want the flight's own value", p)
	}
	// The dropped flight must not have been cached.
	if _, out, _ := c.Get("alpha", invInst(100)); out != Miss {
		t.Fatalf("post-invalidation lookup = %v, want Miss (value must not be cached)", out)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (only the fresh predict resident)", c.Len())
	}
}

// TestInvalidateSystemConcurrent hammers Get on two systems while
// repeatedly invalidating one of them; run under -race this is the
// promotion-vs-serving torture test. Every Get must succeed, and the
// untouched system's entries must stay resident throughout.
func TestInvalidateSystemConcurrent(t *testing.T) {
	c := NewSharded(512, 8, func(system string, inst plan.Instance) (Plan, error) {
		return Plan{RTimeNs: float64(inst.Dim)}, nil
	})
	for dim := 100; dim < 132; dim++ {
		c.Get("stable", invInst(dim))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sys := "churn"
				if i%2 == 0 {
					sys = "stable"
				}
				p, _, err := c.Get(sys, invInst(100+(i+g)%32))
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if p.RTimeNs != float64(100+(i+g)%32) {
					t.Errorf("Get returned wrong plan: %+v", p)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		c.InvalidateSystem("churn")
	}
	close(stop)
	wg.Wait()

	st := c.SystemStats()
	if st["stable"].Size != 32 {
		t.Fatalf("stable system lost entries: %+v", st["stable"])
	}
	if st["stable"].Invalidations != 0 {
		t.Fatalf("stable system was invalidated: %+v", st["stable"])
	}
}

// Package des is a small discrete-event simulation engine with a virtual
// clock, used to model the heterogeneous platforms of the paper. Events
// execute in non-decreasing time order with deterministic FIFO
// tie-breaking, so every simulation is exactly reproducible.
//
// The engine is callback-based: an event is a function scheduled at an
// absolute virtual time. Resources provide FIFO queuing with a fixed
// capacity, which the simulated OpenCL layer uses for in-order command
// queues and for contention on the shared PCIe link.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    float64
	seq    int64
	queue  eventHeap
	nRun   int64
	closed bool
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() int64 { return e.nRun }

// Schedule runs fn after delay nanoseconds of virtual time. Negative or
// NaN delays are programming errors and panic.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.nRun++
		ev.fn()
	}
	return e.now
}

// Resource is a FIFO-ordered resource with a fixed number of slots, e.g. a
// PCIe link (capacity 1) or a pool of CPU worker threads. Acquire enqueues
// a request; when a slot frees, the longest-waiting request is granted.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []func()
	// Busy accumulates slot-nanoseconds of use for utilization reporting.
	Busy float64
}

// NewResource creates a resource with the given slot count.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("des: resource %q needs capacity >= 1, got %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// Acquire requests a slot and calls granted (as a new event at the grant
// time) once one is available. The holder must call Release exactly once.
func (r *Resource) Acquire(granted func()) {
	if r.inUse < r.capacity {
		r.inUse++
		r.eng.Schedule(0, granted)
		return
	}
	r.waiters = append(r.waiters, granted)
}

// Release frees a slot, waking the longest-waiting acquirer if any.
func (r *Resource) Release() {
	if r.inUse == 0 {
		panic(fmt.Sprintf("des: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.eng.Schedule(0, next)
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for dur nanoseconds, then releases
// it and calls done (which may be nil). It is the common
// acquire-occupy-release pattern for modeling transfers and kernels.
func (r *Resource) Use(dur float64, done func()) {
	if dur < 0 || math.IsNaN(dur) {
		panic(fmt.Sprintf("des: invalid duration %v on %q", dur, r.name))
	}
	r.Acquire(func() {
		r.Busy += dur
		r.eng.Schedule(dur, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Barrier joins n completions into one continuation: the returned function
// must be called n times, and on the n-th call cont is scheduled. A
// Barrier with n == 0 schedules cont immediately.
func (e *Engine) Barrier(n int, cont func()) func() {
	if n < 0 {
		panic("des: negative barrier count")
	}
	if n == 0 {
		e.Schedule(0, cont)
		return func() { panic("des: arrival at zero-count barrier") }
	}
	remaining := n
	return func() {
		remaining--
		if remaining == 0 {
			e.Schedule(0, cont)
		}
		if remaining < 0 {
			panic("des: barrier arrival count exceeded")
		}
	}
}

// Series runs a chain of steps sequentially: each step receives a next
// function it must call exactly once when finished (possibly after
// scheduling further events). After the last step, done is called.
func (e *Engine) Series(steps []func(next func()), done func()) {
	var run func(i int)
	run = func(i int) {
		if i >= len(steps) {
			if done != nil {
				e.Schedule(0, done)
			}
			return
		}
		steps[i](func() { run(i + 1) })
	}
	run(0)
}

package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("final time = %v, want 5", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v not FIFO", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hit []string
	e.Schedule(1, func() {
		hit = append(hit, "a")
		e.Schedule(2, func() { hit = append(hit, "c") })
	})
	e.Schedule(2, func() { hit = append(hit, "b") })
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(hit) || hit[i] != want[i] {
			t.Fatalf("got %v, want %v", hit, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
}

func TestSchedulePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestResourceSerializes(t *testing.T) {
	// Capacity 1: three 10ns uses must finish at 10, 20, 30.
	e := NewEngine()
	r := NewResource(e, "bus", 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		r.Use(10, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	want := []float64{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
	if r.Busy != 30 {
		t.Errorf("busy = %v, want 30", r.Busy)
	}
}

func TestResourceParallelSlots(t *testing.T) {
	// Capacity 2: four 10ns uses finish at 10,10,20,20.
	e := NewEngine()
	r := NewResource(e, "pool", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		r.Use(10, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	want := []float64{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOGrantOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "q", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Use(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
}

func TestReleasePanicsWhenIdle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e := NewEngine()
	NewResource(e, "x", 1).Release()
}

func TestBarrier(t *testing.T) {
	e := NewEngine()
	done := false
	arrive := e.Barrier(3, func() { done = true })
	e.Schedule(1, arrive)
	e.Schedule(2, arrive)
	e.Schedule(5, arrive)
	e.Run()
	if !done {
		t.Error("barrier continuation not run")
	}
	if e.Now() != 5 {
		t.Errorf("barrier released at %v, want 5", e.Now())
	}
}

func TestBarrierZero(t *testing.T) {
	e := NewEngine()
	done := false
	e.Barrier(0, func() { done = true })
	e.Run()
	if !done {
		t.Error("zero barrier must fire immediately")
	}
}

func TestSeries(t *testing.T) {
	e := NewEngine()
	var order []int
	steps := []func(next func()){
		func(next func()) { order = append(order, 1); e.Schedule(10, next) },
		func(next func()) { order = append(order, 2); e.Schedule(10, next) },
		func(next func()) { order = append(order, 3); next() },
	}
	fin := false
	e.Series(steps, func() { fin = true })
	e.Run()
	if !fin || len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("series ran wrong: order=%v fin=%v", order, fin)
	}
	if e.Now() != 20 {
		t.Errorf("series end time = %v, want 20", e.Now())
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: for any random schedule of events, observed times are
	// non-decreasing and the final time equals the max delay.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := rng.Intn(50) + 1
		maxD := 0.0
		prev := -1.0
		ok := true
		for i := 0; i < n; i++ {
			d := rng.Float64() * 100
			if d > maxD {
				maxD = d
			}
			e.Schedule(d, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		return e.Run() == maxD && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		r := NewResource(e, "bus", 1)
		var times []float64
		for i := 0; i < 20; i++ {
			d := float64((i*7)%5 + 1)
			e.Schedule(float64(i%3), func() {
				r.Use(d, func() { times = append(times, e.Now()) })
			})
		}
		e.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

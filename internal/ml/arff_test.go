package ml

import (
	"bytes"
	"strings"
	"testing"
)

func TestARFFRoundTrip(t *testing.T) {
	d := NewDataset("dim", "tsize", "dsize")
	d.Add([]float64{500, 10, 1}, -1)
	d.Add([]float64{2700, 12000, 5}, 1899)
	d.Add([]float64{1100, 0.5, 0}, -1)

	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "wavefront-band", "band"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"@RELATION wavefront-band", "@ATTRIBUTE dim NUMERIC",
		"@ATTRIBUTE band NUMERIC", "@DATA"} {
		if !strings.Contains(out, want) {
			t.Errorf("ARFF missing %q:\n%s", want, out)
		}
	}

	back, target, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if target != "band" {
		t.Errorf("target = %q, want band", target)
	}
	if back.Len() != d.Len() || back.Features() != d.Features() {
		t.Fatalf("shape changed: %v vs %v", back, d)
	}
	for i := range d.Y {
		if back.Y[i] != d.Y[i] {
			t.Errorf("row %d target %v != %v", i, back.Y[i], d.Y[i])
		}
		for j := range d.X[i] {
			if back.X[i][j] != d.X[i][j] {
				t.Errorf("row %d feature %d changed", i, j)
			}
		}
	}
}

func TestARFFSanitizesNames(t *testing.T) {
	d := NewDataset("cpu tile!")
	d.Add([]float64{1}, 2)
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "a b", "y"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cpu_tile_") {
		t.Errorf("name not sanitized:\n%s", buf.String())
	}
}

func TestReadARFFRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"@DATA\n1,2\n",
		"@ATTRIBUTE x NUMERIC\n@DATA\n1\n", // single attribute
		"@ATTRIBUTE x STRING\n@ATTRIBUTE y NUMERIC\n@DATA\n",       // non-numeric
		"@ATTRIBUTE x NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\n1\n",   // arity
		"@ATTRIBUTE x NUMERIC\n@ATTRIBUTE y NUMERIC\n@DATA\na,b\n", // parse
	} {
		if _, _, err := ReadARFF(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed ARFF: %q", bad)
		}
	}
}

func TestReadARFFSkipsComments(t *testing.T) {
	src := "% comment\n@RELATION r\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE y NUMERIC\n\n@DATA\n% another\n1,2\n"
	d, _, err := ReadARFF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Y[0] != 2 {
		t.Error("comment handling broke parsing")
	}
}

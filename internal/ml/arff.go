package ml

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ARFF serialization: the paper built its models in WEKA ([9]), whose
// native dataset format is ARFF. WriteARFF/ReadARFF let datasets distilled
// by this library round-trip to that toolchain for cross-checking.

// WriteARFF writes the dataset in ARFF format with numeric attributes;
// the target attribute is named by target.
func (d *Dataset) WriteARFF(w io.Writer, relation, target string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@RELATION %s\n\n", sanitizeARFF(relation))
	for _, n := range d.Names {
		fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", sanitizeARFF(n))
	}
	fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n\n@DATA\n", sanitizeARFF(target))
	for i, row := range d.X {
		for _, v := range row {
			fmt.Fprintf(bw, "%s,", formatARFF(v))
		}
		fmt.Fprintf(bw, "%s\n", formatARFF(d.Y[i]))
	}
	return bw.Flush()
}

func sanitizeARFF(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

func formatARFF(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ReadARFF parses a numeric-attribute ARFF stream written by WriteARFF
// (or WEKA): the last attribute becomes the target.
func ReadARFF(r io.Reader) (*Dataset, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var names []string
	inData := false
	var d *Dataset
	target := ""
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		lower := strings.ToLower(text)
		switch {
		case strings.HasPrefix(lower, "@relation"):
			// Name not needed for the dataset itself.
		case strings.HasPrefix(lower, "@attribute"):
			if inData {
				return nil, "", fmt.Errorf("ml: line %d: attribute after @DATA", line)
			}
			fields := strings.Fields(text)
			if len(fields) < 3 {
				return nil, "", fmt.Errorf("ml: line %d: malformed attribute", line)
			}
			if !strings.EqualFold(fields[2], "NUMERIC") && !strings.EqualFold(fields[2], "REAL") {
				return nil, "", fmt.Errorf("ml: line %d: only numeric attributes supported, got %q",
					line, fields[2])
			}
			names = append(names, fields[1])
		case strings.HasPrefix(lower, "@data"):
			if len(names) < 2 {
				return nil, "", fmt.Errorf("ml: need at least one feature and one target")
			}
			target = names[len(names)-1]
			d = NewDataset(names[:len(names)-1]...)
			inData = true
		default:
			if !inData {
				return nil, "", fmt.Errorf("ml: line %d: data before @DATA", line)
			}
			parts := strings.Split(text, ",")
			if len(parts) != len(names) {
				return nil, "", fmt.Errorf("ml: line %d: %d values, want %d", line, len(parts), len(names))
			}
			vals := make([]float64, len(parts))
			for i, p := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil {
					return nil, "", fmt.Errorf("ml: line %d: %v", line, err)
				}
				vals[i] = v
			}
			d.Add(vals[:len(vals)-1], vals[len(vals)-1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if d == nil {
		return nil, "", fmt.Errorf("ml: no @DATA section")
	}
	return d, target, nil
}

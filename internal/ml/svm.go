package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// SVMOptions configure the linear SVM trainer.
type SVMOptions struct {
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 60).
	Epochs int
	// Seed drives the example order (default 1).
	Seed int64
}

// DefaultSVMOptions returns the standard configuration.
func DefaultSVMOptions() SVMOptions {
	return SVMOptions{Lambda: 1e-3, Epochs: 60, Seed: 1}
}

func (o SVMOptions) withDefaults() SVMOptions {
	d := DefaultSVMOptions()
	if o.Lambda <= 0 {
		o.Lambda = d.Lambda
	}
	if o.Epochs <= 0 {
		o.Epochs = d.Epochs
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// SVM is a linear soft-margin classifier trained with the Pegasos
// stochastic sub-gradient method. The paper uses a binary SVM as the first
// stage of the tuner: "decide whether or not to exploit parallelism"
// (Section 3.1.2). Features are standardized internally.
type SVM struct {
	Names []string
	W     []float64
	B     float64
	mean  []float64
	scale []float64
}

// FitSVM trains on a dataset whose targets must be the two classes -1 and
// +1.
func FitSVM(d *Dataset, opts SVMOptions) (*SVM, error) {
	opts = opts.withDefaults()
	n, p := d.Len(), d.Features()
	if n == 0 {
		return nil, fmt.Errorf("ml: empty SVM training set")
	}
	for _, y := range d.Y {
		if y != -1 && y != 1 {
			return nil, fmt.Errorf("ml: SVM target %v not in {-1,+1}", y)
		}
	}
	m := &SVM{
		Names: d.Names,
		W:     make([]float64, p),
		mean:  make([]float64, p),
		scale: make([]float64, p),
	}
	// Standardize features for stable step sizes.
	for j := 0; j < p; j++ {
		var s float64
		for _, row := range d.X {
			s += row[j]
		}
		m.mean[j] = s / float64(n)
		var v float64
		for _, row := range d.X {
			dlt := row[j] - m.mean[j]
			v += dlt * dlt
		}
		m.scale[j] = math.Sqrt(v / float64(n))
		if m.scale[j] == 0 {
			m.scale[j] = 1
		}
	}
	z := func(row []float64, j int) float64 { return (row[j] - m.mean[j]) / m.scale[j] }

	rng := rand.New(rand.NewSource(opts.Seed))
	t := 0
	for e := 0; e < opts.Epochs; e++ {
		for _, i := range rng.Perm(n) {
			t++
			eta := 1 / (opts.Lambda * float64(t))
			margin := m.B
			for j := 0; j < p; j++ {
				margin += m.W[j] * z(d.X[i], j)
			}
			margin *= d.Y[i]
			for j := 0; j < p; j++ {
				m.W[j] *= 1 - eta*opts.Lambda
			}
			if margin < 1 {
				for j := 0; j < p; j++ {
					m.W[j] += eta * d.Y[i] * z(d.X[i], j)
				}
				m.B += eta * d.Y[i]
			}
		}
	}
	return m, nil
}

// Margin returns the signed decision value for x.
func (m *SVM) Margin(x []float64) float64 {
	s := m.B
	for j, w := range m.W {
		s += w * (x[j] - m.mean[j]) / m.scale[j]
	}
	return s
}

// Predict implements Model, returning the margin (useful for metrics).
func (m *SVM) Predict(x []float64) float64 { return m.Margin(x) }

// Classify returns the predicted class.
func (m *SVM) Classify(x []float64) bool { return m.Margin(x) >= 0 }

// Accuracy returns the classification accuracy on a {-1,+1} dataset.
func (m *SVM) Accuracy(d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	hits := 0
	for i, x := range d.X {
		pred := 1.0
		if !m.Classify(x) {
			pred = -1
		}
		if pred == d.Y[i] {
			hits++
		}
	}
	return float64(hits) / float64(d.Len())
}

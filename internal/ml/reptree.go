package ml

import (
	"fmt"
	"sort"
	"strings"
)

// REPOptions configure REP-tree induction.
type REPOptions struct {
	// MinLeaf is the minimum examples per leaf (default 2, WEKA's
	// default).
	MinLeaf int
	// MaxDepth bounds the tree (default 20).
	MaxDepth int
	// PruneFraction is the share of data held out for reduced-error
	// pruning (default 1/3, as in WEKA's REPTree).
	PruneFraction float64
	// Seed drives the grow/prune split.
	Seed int64
}

// DefaultREPOptions returns the standard configuration.
func DefaultREPOptions() REPOptions {
	return REPOptions{MinLeaf: 2, MaxDepth: 20, PruneFraction: 1.0 / 3.0, Seed: 1}
}

func (o REPOptions) withDefaults() REPOptions {
	d := DefaultREPOptions()
	if o.MinLeaf <= 0 {
		o.MinLeaf = d.MinLeaf
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = d.MaxDepth
	}
	if o.PruneFraction <= 0 || o.PruneFraction >= 1 {
		o.PruneFraction = d.PruneFraction
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// REPTree is a regression tree with variance-reduction splits and
// reduced-error pruning against a held-out set — the fast decision-tree
// learner the paper uses for the (near-binary) gpu-tile decision.
type REPTree struct {
	Names []string
	opts  REPOptions
	root  *repNode
}

type repNode struct {
	feat   int
	thresh float64
	left   *repNode
	right  *repNode
	mean   float64
	n      int
	leaf   bool
}

// FitREP grows a tree on a grow/prune split of d and prunes it.
func FitREP(d *Dataset, opts REPOptions) *REPTree {
	opts = opts.withDefaults()
	t := &REPTree{Names: d.Names, opts: opts}
	shuffled := d.Shuffle(opts.Seed)
	pruneSet, growSet := shuffled.Split(opts.PruneFraction)
	if growSet.Len() == 0 {
		growSet = shuffled
		pruneSet = NewDataset(d.Names...)
	}
	t.root = t.grow(growSet, 0)
	if pruneSet.Len() > 0 {
		t.prune(t.root, pruneSet)
	}
	return t
}

func (t *REPTree) grow(d *Dataset, depth int) *repNode {
	n := &repNode{n: d.Len(), mean: d.YMean()}
	if d.Len() < 2*t.opts.MinLeaf || depth >= t.opts.MaxDepth || d.YStd() == 0 {
		n.leaf = true
		return n
	}
	feat, thresh, ok := bestVarianceSplit(d, t.opts.MinLeaf)
	if !ok {
		n.leaf = true
		return n
	}
	var li, ri []int
	for i, row := range d.X {
		if row[feat] <= thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	n.feat, n.thresh = feat, thresh
	n.left = t.grow(d.Subset(li), depth+1)
	n.right = t.grow(d.Subset(ri), depth+1)
	return n
}

// bestVarianceSplit minimizes the weighted child variance.
func bestVarianceSplit(d *Dataset, minLeaf int) (feat int, thresh float64, ok bool) {
	n := d.Len()
	type pair struct{ x, y float64 }
	base := d.YStd()
	bestScore := base * base * float64(n) // total SSE to beat
	for f := 0; f < d.Features(); f++ {
		ps := make([]pair, n)
		for i, row := range d.X {
			ps[i] = pair{row[f], d.Y[i]}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
		var sum, sumSq float64
		prefix := make([]float64, n+1)
		prefixSq := make([]float64, n+1)
		for i, p := range ps {
			sum += p.y
			sumSq += p.y * p.y
			prefix[i+1] = sum
			prefixSq[i+1] = sumSq
		}
		sseOf := func(lo, hi int) float64 {
			c := float64(hi - lo)
			if c <= 0 {
				return 0
			}
			m := (prefix[hi] - prefix[lo]) / c
			s := (prefixSq[hi] - prefixSq[lo]) - c*m*m
			if s < 0 {
				s = 0
			}
			return s
		}
		for c := minLeaf; c <= n-minLeaf; c++ {
			if c < 1 || c >= n || ps[c].x == ps[c-1].x {
				continue
			}
			score := sseOf(0, c) + sseOf(c, n)
			if score < bestScore-1e-12 {
				bestScore = score
				feat = f
				thresh = (ps[c-1].x + ps[c].x) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

// prune performs reduced-error pruning: a subtree is replaced by a leaf
// when doing so does not increase squared error on the prune set.
func (t *REPTree) prune(n *repNode, pruneSet *Dataset) float64 {
	leafErr := 0.0
	for i := range pruneSet.X {
		e := n.mean - pruneSet.Y[i]
		leafErr += e * e
	}
	if n.leaf {
		return leafErr
	}
	var li, ri []int
	for i, row := range pruneSet.X {
		if row[n.feat] <= n.thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	subErr := t.prune(n.left, pruneSet.Subset(li)) + t.prune(n.right, pruneSet.Subset(ri))
	if leafErr <= subErr {
		n.leaf = true
		n.left, n.right = nil, nil
		return leafErr
	}
	return subErr
}

// Predict implements Model.
func (t *REPTree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feat] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.mean
}

// Classify thresholds the regression output at 0.5, for binary targets
// such as the paper's "gpu-tile is effectively 1 or 0" decision.
func (t *REPTree) Classify(x []float64) bool { return t.Predict(x) >= 0.5 }

// Leaves returns the leaf count.
func (t *REPTree) Leaves() int {
	var count func(*repNode) int
	count = func(n *repNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return count(n.left) + count(n.right)
	}
	return count(t.root)
}

// Render prints the tree structure.
func (t *REPTree) Render() string {
	var b strings.Builder
	var walk func(n *repNode, indent int)
	walk = func(n *repNode, indent int) {
		pad := strings.Repeat("|   ", indent)
		if n.leaf {
			fmt.Fprintf(&b, "%s-> %.4g (n=%d)\n", pad, n.mean, n.n)
			return
		}
		fmt.Fprintf(&b, "%s%s <= %.4g:\n", pad, t.Names[n.feat], n.thresh)
		walk(n.left, indent+1)
		fmt.Fprintf(&b, "%s%s > %.4g:\n", pad, t.Names[n.feat], n.thresh)
		walk(n.right, indent+1)
	}
	walk(t.root, 0)
	return b.String()
}

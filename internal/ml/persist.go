package ml

import (
	"encoding/json"
	"fmt"
)

// Model persistence: trained tuners are shipped "from the factory"
// (Section 3.1.2), so every model serializes to JSON and back without
// loss. Unexported tree internals round-trip through explicit DTOs to
// keep the wire format stable and independent of implementation details.

type m5NodeDTO struct {
	Feat   int        `json:"feat"`
	Thresh float64    `json:"thresh"`
	Leaf   bool       `json:"leaf"`
	N      int        `json:"n"`
	Model  *Linear    `json:"model,omitempty"`
	Left   *m5NodeDTO `json:"left,omitempty"`
	Right  *m5NodeDTO `json:"right,omitempty"`
}

type m5TreeDTO struct {
	Names []string   `json:"names"`
	Opts  M5Options  `json:"opts"`
	Root  *m5NodeDTO `json:"root"`
}

func m5ToDTO(n *m5node) *m5NodeDTO {
	if n == nil {
		return nil
	}
	return &m5NodeDTO{
		Feat: n.feat, Thresh: n.thresh, Leaf: n.leaf, N: n.n, Model: n.model,
		Left: m5ToDTO(n.left), Right: m5ToDTO(n.right),
	}
}

func m5FromDTO(d *m5NodeDTO) *m5node {
	if d == nil {
		return nil
	}
	return &m5node{
		feat: d.Feat, thresh: d.Thresh, leaf: d.Leaf, n: d.N, model: d.Model,
		left: m5FromDTO(d.Left), right: m5FromDTO(d.Right),
	}
}

// MarshalJSON implements json.Marshaler.
func (t *M5Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(m5TreeDTO{Names: t.Names, Opts: t.opts, Root: m5ToDTO(t.root)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *M5Tree) UnmarshalJSON(data []byte) error {
	var d m5TreeDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("ml: decoding M5 tree: %w", err)
	}
	if d.Root == nil {
		return fmt.Errorf("ml: M5 tree without root")
	}
	t.Names = d.Names
	t.opts = d.Opts
	t.root = m5FromDTO(d.Root)
	return t.validateM5(t.root)
}

func (t *M5Tree) validateM5(n *m5node) error {
	if n == nil {
		return fmt.Errorf("ml: M5 tree with nil node")
	}
	if n.leaf {
		if n.model == nil {
			return fmt.Errorf("ml: M5 leaf without model")
		}
		if len(n.model.W) != len(t.Names) {
			return fmt.Errorf("ml: M5 leaf model arity %d != %d features",
				len(n.model.W), len(t.Names))
		}
		return nil
	}
	if n.feat < 0 || n.feat >= len(t.Names) {
		return fmt.Errorf("ml: M5 split on unknown feature %d", n.feat)
	}
	if n.model == nil {
		return fmt.Errorf("ml: M5 internal node without smoothing model")
	}
	if err := t.validateM5(n.left); err != nil {
		return err
	}
	return t.validateM5(n.right)
}

type repNodeDTO struct {
	Feat   int         `json:"feat"`
	Thresh float64     `json:"thresh"`
	Leaf   bool        `json:"leaf"`
	N      int         `json:"n"`
	Mean   float64     `json:"mean"`
	Left   *repNodeDTO `json:"left,omitempty"`
	Right  *repNodeDTO `json:"right,omitempty"`
}

type repTreeDTO struct {
	Names []string    `json:"names"`
	Opts  REPOptions  `json:"opts"`
	Root  *repNodeDTO `json:"root"`
}

func repToDTO(n *repNode) *repNodeDTO {
	if n == nil {
		return nil
	}
	return &repNodeDTO{
		Feat: n.feat, Thresh: n.thresh, Leaf: n.leaf, N: n.n, Mean: n.mean,
		Left: repToDTO(n.left), Right: repToDTO(n.right),
	}
}

func repFromDTO(d *repNodeDTO) *repNode {
	if d == nil {
		return nil
	}
	return &repNode{
		feat: d.Feat, thresh: d.Thresh, leaf: d.Leaf, n: d.N, mean: d.Mean,
		left: repFromDTO(d.Left), right: repFromDTO(d.Right),
	}
}

// MarshalJSON implements json.Marshaler.
func (t *REPTree) MarshalJSON() ([]byte, error) {
	return json.Marshal(repTreeDTO{Names: t.Names, Opts: t.opts, Root: repToDTO(t.root)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *REPTree) UnmarshalJSON(data []byte) error {
	var d repTreeDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("ml: decoding REP tree: %w", err)
	}
	if d.Root == nil {
		return fmt.Errorf("ml: REP tree without root")
	}
	t.Names = d.Names
	t.opts = d.Opts
	t.root = repFromDTO(d.Root)
	return validateREP(t.root, len(d.Names))
}

func validateREP(n *repNode, features int) error {
	if n == nil {
		return fmt.Errorf("ml: REP tree with nil node")
	}
	if n.leaf {
		return nil
	}
	if n.feat < 0 || n.feat >= features {
		return fmt.Errorf("ml: REP split on unknown feature %d", n.feat)
	}
	if err := validateREP(n.left, features); err != nil {
		return err
	}
	return validateREP(n.right, features)
}

type svmDTO struct {
	Names []string  `json:"names"`
	W     []float64 `json:"w"`
	B     float64   `json:"b"`
	Mean  []float64 `json:"mean"`
	Scale []float64 `json:"scale"`
}

// MarshalJSON implements json.Marshaler.
func (m *SVM) MarshalJSON() ([]byte, error) {
	return json.Marshal(svmDTO{Names: m.Names, W: m.W, B: m.B, Mean: m.mean, Scale: m.scale})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *SVM) UnmarshalJSON(data []byte) error {
	var d svmDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("ml: decoding SVM: %w", err)
	}
	if len(d.W) != len(d.Names) || len(d.Mean) != len(d.Names) || len(d.Scale) != len(d.Names) {
		return fmt.Errorf("ml: SVM arity mismatch")
	}
	for _, s := range d.Scale {
		if s == 0 {
			return fmt.Errorf("ml: SVM with zero feature scale")
		}
	}
	m.Names = d.Names
	m.W = d.W
	m.B = d.B
	m.mean = d.Mean
	m.scale = d.Scale
	return nil
}

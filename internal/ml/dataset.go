// Package ml implements the machine-learning models the paper uses for
// autotuning — M5 pruned model trees, REP trees, a binary linear SVM and
// ridge linear regression — together with datasets, k-fold cross-validation
// and regression/classification metrics. Everything is built on the
// standard library only and is deterministic given a seed, so trained
// tuners are exactly reproducible.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Dataset is a design matrix with one numeric target.
type Dataset struct {
	// Names labels the feature columns (used when rendering models).
	Names []string
	X     [][]float64
	Y     []float64
}

// NewDataset creates an empty dataset over the named features.
func NewDataset(names ...string) *Dataset {
	return &Dataset{Names: names}
}

// Add appends one example. The row is copied.
func (d *Dataset) Add(x []float64, y float64) {
	if len(x) != len(d.Names) {
		panic(fmt.Sprintf("ml: row has %d features, dataset has %d", len(x), len(d.Names)))
	}
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Features returns the number of feature columns.
func (d *Dataset) Features() int { return len(d.Names) }

// Subset returns a new dataset containing the rows at the given indices
// (rows are shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Names: d.Names}
	s.X = make([][]float64, 0, len(idx))
	s.Y = make([]float64, 0, len(idx))
	for _, i := range idx {
		s.X = append(s.X, d.X[i])
		s.Y = append(s.Y, d.Y[i])
	}
	return s
}

// Shuffle returns a permuted copy using the given seed.
func (d *Dataset) Shuffle(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	return d.Subset(idx)
}

// Split divides the dataset into a head of fraction frac and the
// remainder, without shuffling.
func (d *Dataset) Split(frac float64) (head, tail *Dataset) {
	n := int(math.Round(frac * float64(d.Len())))
	if n < 0 {
		n = 0
	}
	if n > d.Len() {
		n = d.Len()
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx[:n]), d.Subset(idx[n:])
}

// YMean returns the mean target value.
func (d *Dataset) YMean() float64 {
	if d.Len() == 0 {
		return 0
	}
	s := 0.0
	for _, y := range d.Y {
		s += y
	}
	return s / float64(d.Len())
}

// YStd returns the population standard deviation of the target.
func (d *Dataset) YStd() float64 {
	n := d.Len()
	if n == 0 {
		return 0
	}
	m := d.YMean()
	s := 0.0
	for _, y := range d.Y {
		s += (y - m) * (y - m)
	}
	return math.Sqrt(s / float64(n))
}

// String summarizes the dataset shape.
func (d *Dataset) String() string {
	return fmt.Sprintf("dataset{%d x [%s]}", d.Len(), strings.Join(d.Names, ","))
}

// Model is any fitted regressor.
type Model interface {
	Predict(x []float64) float64
}

// Metrics aggregates regression quality measures.
type Metrics struct {
	MAE  float64 // mean absolute error
	RMSE float64
	R2   float64 // coefficient of determination vs the mean predictor
	N    int
}

// Evaluate scores a model on a dataset.
func Evaluate(m Model, d *Dataset) Metrics {
	n := d.Len()
	if n == 0 {
		return Metrics{}
	}
	mean := d.YMean()
	var sae, sse, sst float64
	for i, x := range d.X {
		p := m.Predict(x)
		e := p - d.Y[i]
		sae += math.Abs(e)
		sse += e * e
		sst += (d.Y[i] - mean) * (d.Y[i] - mean)
	}
	r2 := 0.0
	if sst > 0 {
		r2 = 1 - sse/sst
	} else if sse == 0 {
		r2 = 1
	}
	return Metrics{MAE: sae / float64(n), RMSE: math.Sqrt(sse / float64(n)), R2: r2, N: n}
}

// AccuracyWithin returns the fraction of predictions within tol of the
// target, where tol is an absolute tolerance plus a relative fraction of
// the target magnitude. It is the "at least 90% accurate" criterion of
// Section 3.1.2 applied to regression targets.
func AccuracyWithin(m Model, d *Dataset, absTol, relTol float64) float64 {
	if d.Len() == 0 {
		return 0
	}
	hits := 0
	for i, x := range d.X {
		limit := absTol + relTol*math.Abs(d.Y[i])
		if math.Abs(m.Predict(x)-d.Y[i]) <= limit {
			hits++
		}
	}
	return float64(hits) / float64(d.Len())
}

package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset builds n examples of a piecewise-linear function with
// noise, the regime M5 trees are designed for.
func synthDataset(n int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := NewDataset("a", "b", "c")
	for i := 0; i < n; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		c := rng.Float64() * 10
		var y float64
		if a <= 5 {
			y = 2*a + b - 3
		} else {
			y = -a + 4*c + 10
		}
		y += rng.NormFloat64() * noise
		d.Add([]float64{a, b, c}, y)
	}
	return d
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset("x")
	d.Add([]float64{1}, 2)
	d.Add([]float64{3}, 4)
	if d.Len() != 2 || d.Features() != 1 {
		t.Fatal("shape wrong")
	}
	if d.YMean() != 3 {
		t.Errorf("YMean = %v, want 3", d.YMean())
	}
	if d.YStd() != 1 {
		t.Errorf("YStd = %v, want 1", d.YStd())
	}
	s := d.Subset([]int{1})
	if s.Len() != 1 || s.Y[0] != 4 {
		t.Error("subset wrong")
	}
	h, tl := d.Split(0.5)
	if h.Len() != 1 || tl.Len() != 1 {
		t.Error("split wrong")
	}
}

func TestDatasetAddPanicsOnBadRow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDataset("x", "y").Add([]float64{1}, 0)
}

func TestShuffleDeterministic(t *testing.T) {
	d := synthDataset(50, 0, 7)
	a := d.Shuffle(42)
	b := d.Shuffle(42)
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
}

func TestLinearExactRecovery(t *testing.T) {
	// Noise-free linear data must be recovered nearly exactly.
	rng := rand.New(rand.NewSource(3))
	d := NewDataset("u", "v")
	for i := 0; i < 200; i++ {
		u, v := rng.Float64()*5, rng.Float64()*5
		d.Add([]float64{u, v}, 3*u-2*v+7)
	}
	m := FitLinear(d, 1e-9)
	if math.Abs(m.W[0]-3) > 1e-6 || math.Abs(m.W[1]+2) > 1e-6 || math.Abs(m.B-7) > 1e-6 {
		t.Errorf("recovered %v + %v, want [3 -2] + 7", m.W, m.B)
	}
	met := Evaluate(m, d)
	if met.R2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", met.R2)
	}
}

func TestLinearHandlesDegenerate(t *testing.T) {
	// Constant feature: ridge keeps the system solvable.
	d := NewDataset("x")
	for i := 0; i < 10; i++ {
		d.Add([]float64{2}, 5)
	}
	m := FitLinear(d, 1e-3)
	if p := m.Predict([]float64{2}); math.Abs(p-5) > 0.1 {
		t.Errorf("degenerate prediction %v, want ~5", p)
	}
	// Empty dataset: zero model.
	if FitLinear(NewDataset("x"), 1).Predict([]float64{1}) != 0 {
		t.Error("empty fit must predict 0")
	}
}

func TestLinearString(t *testing.T) {
	m := &Linear{Names: []string{"tsize", "dsize"}, W: []float64{0, -0.1598}, B: -0.381}
	s := m.String()
	if s != "-0.1598*dsize - 0.381" {
		t.Errorf("String = %q", s)
	}
	// Zero weights entirely.
	z := &Linear{Names: []string{"x"}, W: []float64{0}, B: 2}
	if z.String() != "2" {
		t.Errorf("String = %q, want \"2\"", z.String())
	}
}

func TestM5FitsPiecewiseLinear(t *testing.T) {
	// A piecewise-linear target is the M5 sweet spot: the tree should
	// split near a=5 and fit each side closely.
	train := synthDataset(600, 0.05, 11)
	test := synthDataset(200, 0.05, 12)
	m := FitM5(train, DefaultM5Options())
	met := Evaluate(m, test)
	if met.R2 < 0.95 {
		t.Errorf("M5 R2 = %v, want >= 0.95", met.R2)
	}
	if m.Leaves() < 2 {
		t.Error("tree must split at least once")
	}
}

func TestM5BeatsPlainLinearOnPiecewise(t *testing.T) {
	train := synthDataset(600, 0.05, 21)
	test := synthDataset(200, 0.05, 22)
	m5 := FitM5(train, DefaultM5Options())
	lin := FitLinear(train, 1e-6)
	if Evaluate(m5, test).RMSE >= Evaluate(lin, test).RMSE {
		t.Error("M5 must beat a single linear model on piecewise data " +
			"(the paper found plain regression lacking)")
	}
}

func TestM5PruningShrinksTree(t *testing.T) {
	// Pure noise: pruning should collapse (nearly) everything.
	rng := rand.New(rand.NewSource(5))
	d := NewDataset("x")
	for i := 0; i < 300; i++ {
		d.Add([]float64{rng.Float64()}, rng.NormFloat64())
	}
	m := FitM5(d, DefaultM5Options())
	if m.Leaves() > 8 {
		t.Errorf("noise tree kept %d leaves; pruning too weak", m.Leaves())
	}
}

func TestM5DeterministicAndRenders(t *testing.T) {
	d := synthDataset(300, 0.1, 31)
	a := FitM5(d, DefaultM5Options())
	b := FitM5(d, DefaultM5Options())
	probe := []float64{4, 2, 8}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("M5 fit not deterministic")
	}
	r := a.Render("halo")
	if len(r) == 0 || a.Depth() < 1 {
		t.Error("render/depth broken")
	}
}

func TestM5SmoothingBounded(t *testing.T) {
	// Smoothed predictions must stay within the convex hull of node model
	// predictions; sanity-check against explosion.
	d := synthDataset(400, 0.1, 41)
	m := FitM5(d, DefaultM5Options())
	f := func(ra, rb, rc uint8) bool {
		x := []float64{float64(ra) / 25.5, float64(rb) / 25.5, float64(rc) / 25.5}
		p := m.Predict(x)
		return !math.IsNaN(p) && math.Abs(p) < 1e4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestREPTreeFitsStep(t *testing.T) {
	// A step function is the REP tree sweet spot.
	rng := rand.New(rand.NewSource(9))
	train := NewDataset("x", "z")
	for i := 0; i < 400; i++ {
		x, z := rng.Float64()*10, rng.Float64()
		y := 0.0
		if x > 6 {
			y = 1
		}
		train.Add([]float64{x, z}, y)
	}
	m := FitREP(train, DefaultREPOptions())
	errs := 0
	for i := 0; i < 100; i++ {
		x, z := rng.Float64()*10, rng.Float64()
		want := x > 6
		if m.Classify([]float64{x, z}) != want {
			errs++
		}
	}
	if errs > 5 {
		t.Errorf("REP tree misclassified %d/100 on a clean step", errs)
	}
}

func TestREPPruningControlsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := NewDataset("x")
	for i := 0; i < 400; i++ {
		d.Add([]float64{rng.Float64()}, rng.NormFloat64())
	}
	m := FitREP(d, DefaultREPOptions())
	if m.Leaves() > 25 {
		t.Errorf("noise REP tree kept %d leaves", m.Leaves())
	}
}

func TestREPRender(t *testing.T) {
	d := synthDataset(100, 0.1, 15)
	if FitREP(d, DefaultREPOptions()).Render() == "" {
		t.Error("empty render")
	}
}

func TestSVMSeparable(t *testing.T) {
	// Linearly separable classes must be classified near-perfectly.
	rng := rand.New(rand.NewSource(17))
	d := NewDataset("x", "y")
	for i := 0; i < 400; i++ {
		x, y := rng.NormFloat64(), rng.NormFloat64()
		label := -1.0
		if x+y > 0.5 {
			label = 1
		}
		d.Add([]float64{x, y}, label)
	}
	m, err := FitSVM(d, DefaultSVMOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(d); acc < 0.97 {
		t.Errorf("separable accuracy = %v, want >= 0.97", acc)
	}
}

func TestSVMRejectsBadLabels(t *testing.T) {
	d := NewDataset("x")
	d.Add([]float64{1}, 0.5)
	if _, err := FitSVM(d, DefaultSVMOptions()); err == nil {
		t.Error("non-binary labels must be rejected")
	}
	if _, err := FitSVM(NewDataset("x"), DefaultSVMOptions()); err == nil {
		t.Error("empty training set must be rejected")
	}
}

func TestSVMDeterministic(t *testing.T) {
	d := synthDataset(100, 0, 19)
	bin := NewDataset(d.Names...)
	for i := range d.Y {
		l := -1.0
		if d.Y[i] > d.YMean() {
			l = 1
		}
		bin.Add(d.X[i], l)
	}
	a, _ := FitSVM(bin, DefaultSVMOptions())
	b, _ := FitSVM(bin, DefaultSVMOptions())
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("SVM training not deterministic")
		}
	}
}

func TestKFoldPartition(t *testing.T) {
	folds := KFold(17, 5, 3)
	if len(folds) != 5 {
		t.Fatalf("want 5 folds, got %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 17 {
		t.Fatalf("covered %d indices, want 17", len(seen))
	}
}

func TestCrossValidateCatchesOverfit(t *testing.T) {
	// A 1-nearest-memorizer looks perfect on training data; CV must not.
	d := synthDataset(120, 1.0, 23)
	cvM5, err := CrossValidate(d, 5, 1, func(train *Dataset) Model {
		return FitM5(train, DefaultM5Options())
	})
	if err != nil {
		t.Fatal(err)
	}
	if cvM5.N != d.Len() {
		t.Errorf("CV pooled %d predictions, want %d", cvM5.N, d.Len())
	}
	// With noise sd=1, held-out RMSE cannot be far below 1.
	if cvM5.RMSE < 0.5 {
		t.Errorf("CV RMSE %v implausibly low; leakage?", cvM5.RMSE)
	}
}

func TestCrossValidateAccuracyGate(t *testing.T) {
	// Near-noise-free piecewise data must pass the paper's 90% gate.
	d := synthDataset(400, 0.01, 29)
	acc, err := CrossValidateAccuracy(d, 5, 1, 0.5, 0.1, func(train *Dataset) Model {
		return FitM5(train, DefaultM5Options())
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("CV accuracy %v below the 90%% gate", acc)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := NewDataset("x")
	d.Add([]float64{1}, 1)
	if _, err := CrossValidate(d, 5, 1, nil); err == nil {
		t.Error("CV on 1 example must fail")
	}
}

func TestAccuracyWithin(t *testing.T) {
	d := NewDataset("x")
	d.Add([]float64{0}, 10)
	d.Add([]float64{0}, 20)
	m := &Linear{Names: []string{"x"}, W: []float64{0}, B: 11}
	// |11-10|=1 <= 2 abs tol -> hit; |11-20|=9 > 2 -> miss.
	if got := AccuracyWithin(m, d, 2, 0); got != 0.5 {
		t.Errorf("AccuracyWithin = %v, want 0.5", got)
	}
}

func TestEvaluatePerfectModel(t *testing.T) {
	d := synthDataset(50, 0, 33)
	perfect := modelExact{d}
	met := Evaluate(perfect, d)
	if met.MAE != 0 || met.RMSE != 0 || met.R2 != 1 {
		t.Errorf("perfect model metrics wrong: %+v", met)
	}
}

// modelExact replays the dataset targets by matching rows.
type modelExact struct{ d *Dataset }

func (m modelExact) Predict(x []float64) float64 {
	for i, row := range m.d.X {
		same := true
		for j := range row {
			if row[j] != x[j] {
				same = false
				break
			}
		}
		if same {
			return m.d.Y[i]
		}
	}
	return 0
}

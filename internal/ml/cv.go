package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KFold partitions [0, n) into k disjoint folds, shuffled by seed. Fold
// sizes differ by at most one.
func KFold(n, k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// CrossValidate runs k-fold cross-validation: fit is called with each
// training split, and the returned models are scored on the held-out
// folds. The aggregate metrics pool all held-out predictions — the
// evaluation protocol of Section 3.1.2 ("cross-validation ... conducted on
// instances omitted from the training set, to avoid overfitting").
func CrossValidate(d *Dataset, k int, seed int64, fit func(train *Dataset) Model) (Metrics, error) {
	n := d.Len()
	if n < 2 {
		return Metrics{}, fmt.Errorf("ml: cross-validation needs >= 2 examples, have %d", n)
	}
	folds := KFold(n, k, seed)
	pooled := NewDataset(d.Names...)
	var preds []float64
	for f := range folds {
		holdout := map[int]bool{}
		for _, i := range folds[f] {
			holdout[i] = true
		}
		var trainIdx []int
		for i := 0; i < n; i++ {
			if !holdout[i] {
				trainIdx = append(trainIdx, i)
			}
		}
		m := fit(d.Subset(trainIdx))
		for _, i := range folds[f] {
			pooled.Add(d.X[i], d.Y[i])
			preds = append(preds, m.Predict(d.X[i]))
		}
	}
	return evaluatePreds(preds, pooled), nil
}

// CrossValidateAccuracy is CrossValidate for the tolerance-accuracy
// criterion: it returns the fraction of held-out predictions within
// absTol + relTol*|y| of the target.
func CrossValidateAccuracy(d *Dataset, k int, seed int64, absTol, relTol float64,
	fit func(train *Dataset) Model) (float64, error) {
	n := d.Len()
	if n < 2 {
		return 0, fmt.Errorf("ml: cross-validation needs >= 2 examples, have %d", n)
	}
	folds := KFold(n, k, seed)
	hits, total := 0, 0
	for f := range folds {
		holdout := map[int]bool{}
		for _, i := range folds[f] {
			holdout[i] = true
		}
		var trainIdx []int
		for i := 0; i < n; i++ {
			if !holdout[i] {
				trainIdx = append(trainIdx, i)
			}
		}
		m := fit(d.Subset(trainIdx))
		for _, i := range folds[f] {
			limit := absTol + relTol*abs(d.Y[i])
			if abs(m.Predict(d.X[i])-d.Y[i]) <= limit {
				hits++
			}
			total++
		}
	}
	return float64(hits) / float64(total), nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// evaluatePreds scores precomputed predictions against a dataset.
func evaluatePreds(preds []float64, d *Dataset) Metrics {
	n := d.Len()
	if n == 0 {
		return Metrics{}
	}
	mean := d.YMean()
	var sae, sse, sst float64
	for i := range preds {
		e := preds[i] - d.Y[i]
		sae += abs(e)
		sse += e * e
		sst += (d.Y[i] - mean) * (d.Y[i] - mean)
	}
	r2 := 0.0
	if sst > 0 {
		r2 = 1 - sse/sst
	} else if sse == 0 {
		r2 = 1
	}
	return Metrics{MAE: sae / float64(n), RMSE: math.Sqrt(sse / float64(n)), R2: r2, N: n}
}

package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// M5Options configure model-tree induction.
type M5Options struct {
	// MinLeaf is the minimum number of examples in a leaf (default 4).
	MinLeaf int
	// SDStop stops splitting when a node's target deviation falls below
	// this fraction of the root deviation (default 0.05, as in M5).
	SDStop float64
	// MaxDepth bounds the tree (default 20).
	MaxDepth int
	// Ridge regularizes the leaf linear models (default 1e-3).
	Ridge float64
	// Smooth enables M5's leaf-to-root prediction smoothing (default on
	// via DefaultM5Options).
	Smooth bool
	// SmoothK is the smoothing constant (default 15).
	SmoothK float64
	// MaxThresholds caps candidate split points per feature (default 64).
	MaxThresholds int
}

// DefaultM5Options returns the standard configuration.
func DefaultM5Options() M5Options {
	return M5Options{MinLeaf: 4, SDStop: 0.05, MaxDepth: 20, Ridge: 1e-3,
		Smooth: true, SmoothK: 15, MaxThresholds: 64}
}

func (o M5Options) withDefaults() M5Options {
	d := DefaultM5Options()
	if o.MinLeaf <= 0 {
		o.MinLeaf = d.MinLeaf
	}
	if o.SDStop <= 0 {
		o.SDStop = d.SDStop
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = d.MaxDepth
	}
	if o.Ridge <= 0 {
		o.Ridge = d.Ridge
	}
	if o.SmoothK <= 0 {
		o.SmoothK = d.SmoothK
	}
	if o.MaxThresholds <= 0 {
		o.MaxThresholds = d.MaxThresholds
	}
	return o
}

// M5Tree is an M5 pruned model tree: internal nodes split on a feature
// threshold, leaves hold linear models (the structure of the paper's
// Figure 9), and predictions are optionally smoothed along the path.
type M5Tree struct {
	Names []string
	opts  M5Options
	root  *m5node
}

type m5node struct {
	// Split (internal nodes).
	feat   int
	thresh float64
	left   *m5node
	right  *m5node
	// Model: every node carries a linear model; after pruning, leaves use
	// theirs and internal models drive smoothing.
	model *Linear
	n     int
	leaf  bool
}

// FitM5 grows and prunes a model tree on d.
func FitM5(d *Dataset, opts M5Options) *M5Tree {
	opts = opts.withDefaults()
	t := &M5Tree{Names: d.Names, opts: opts}
	rootSD := d.YStd()
	t.root = t.grow(d, rootSD, 0)
	t.prune(t.root, d)
	return t
}

func (t *M5Tree) grow(d *Dataset, rootSD float64, depth int) *m5node {
	n := &m5node{n: d.Len(), model: FitLinear(d, t.opts.Ridge)}
	if d.Len() < 2*t.opts.MinLeaf || depth >= t.opts.MaxDepth ||
		d.YStd() < t.opts.SDStop*rootSD {
		n.leaf = true
		return n
	}
	feat, thresh, ok := t.bestSplit(d)
	if !ok {
		n.leaf = true
		return n
	}
	var li, ri []int
	for i, row := range d.X {
		if row[feat] <= thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < t.opts.MinLeaf || len(ri) < t.opts.MinLeaf {
		n.leaf = true
		return n
	}
	n.feat, n.thresh = feat, thresh
	n.left = t.grow(d.Subset(li), rootSD, depth+1)
	n.right = t.grow(d.Subset(ri), rootSD, depth+1)
	return n
}

// bestSplit maximizes the standard deviation reduction
// SDR = sd(S) - sum |Si|/|S| * sd(Si) over features and thresholds.
func (t *M5Tree) bestSplit(d *Dataset) (feat int, thresh float64, ok bool) {
	n := d.Len()
	bestSDR := 0.0
	baseSD := d.YStd()
	type pair struct{ x, y float64 }
	for f := 0; f < d.Features(); f++ {
		ps := make([]pair, n)
		for i, row := range d.X {
			ps[i] = pair{row[f], d.Y[i]}
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
		// Prefix sums for O(1) left/right deviation at every cut.
		var sum, sumSq float64
		prefix := make([]float64, n+1)
		prefixSq := make([]float64, n+1)
		for i, p := range ps {
			sum += p.y
			sumSq += p.y * p.y
			prefix[i+1] = sum
			prefixSq[i+1] = sumSq
		}
		sdOf := func(lo, hi int) float64 { // examples [lo, hi)
			c := float64(hi - lo)
			if c <= 0 {
				return 0
			}
			m := (prefix[hi] - prefix[lo]) / c
			v := (prefixSq[hi]-prefixSq[lo])/c - m*m
			if v < 0 {
				v = 0
			}
			return math.Sqrt(v)
		}
		// Candidate cuts between distinct consecutive values, subsampled.
		var cuts []int
		for i := 1; i < n; i++ {
			if ps[i].x != ps[i-1].x {
				cuts = append(cuts, i)
			}
		}
		if len(cuts) > t.opts.MaxThresholds {
			step := float64(len(cuts)) / float64(t.opts.MaxThresholds)
			sampled := make([]int, 0, t.opts.MaxThresholds)
			for i := 0; i < t.opts.MaxThresholds; i++ {
				sampled = append(sampled, cuts[int(float64(i)*step)])
			}
			cuts = sampled
		}
		for _, c := range cuts {
			if c < t.opts.MinLeaf || n-c < t.opts.MinLeaf {
				continue
			}
			sdr := baseSD - (float64(c)/float64(n))*sdOf(0, c) -
				(float64(n-c)/float64(n))*sdOf(c, n)
			if sdr > bestSDR {
				bestSDR = sdr
				feat = f
				thresh = (ps[c-1].x + ps[c].x) / 2
				ok = true
			}
		}
	}
	return feat, thresh, ok
}

// prune collapses subtrees whose linear model does not underperform the
// subtree, using M5's complexity-corrected absolute error
// err * (n + v) / (n - v).
func (t *M5Tree) prune(n *m5node, d *Dataset) float64 {
	modelErr := t.correctedMAE(n, d)
	if n.leaf {
		return modelErr
	}
	var li, ri []int
	for i, row := range d.X {
		if row[n.feat] <= n.thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	ld, rd := d.Subset(li), d.Subset(ri)
	subErr := (t.prune(n.left, ld)*float64(ld.Len()) +
		t.prune(n.right, rd)*float64(rd.Len())) / float64(d.Len())
	if modelErr <= subErr {
		n.leaf = true
		n.left, n.right = nil, nil
		return modelErr
	}
	return subErr
}

func (t *M5Tree) correctedMAE(n *m5node, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	var sae float64
	for i, x := range d.X {
		sae += math.Abs(n.model.Predict(x) - d.Y[i])
	}
	mae := sae / float64(d.Len())
	v := float64(nonZero(n.model.W) + 1)
	nn := float64(d.Len())
	if nn <= v {
		return mae * 10 // hopeless overfit; force pruning upwards
	}
	return mae * (nn + v) / (nn - v)
}

func nonZero(w []float64) int {
	c := 0
	for _, v := range w {
		if v != 0 {
			c++
		}
	}
	return c
}

// Predict implements Model, with smoothing along the root path when
// enabled.
func (t *M5Tree) Predict(x []float64) float64 {
	if !t.opts.Smooth {
		n := t.root
		for !n.leaf {
			if x[n.feat] <= n.thresh {
				n = n.left
			} else {
				n = n.right
			}
		}
		return n.model.Predict(x)
	}
	return t.smoothed(t.root, x)
}

func (t *M5Tree) smoothed(n *m5node, x []float64) float64 {
	if n.leaf {
		return n.model.Predict(x)
	}
	var child *m5node
	if x[n.feat] <= n.thresh {
		child = n.left
	} else {
		child = n.right
	}
	p := t.smoothed(child, x)
	return (float64(child.n)*p + t.opts.SmoothK*n.model.Predict(x)) /
		(float64(child.n) + t.opts.SmoothK)
}

// Leaves returns the number of leaf models.
func (t *M5Tree) Leaves() int { return countLeaves(t.root) }

func countLeaves(n *m5node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

// Depth returns the tree depth (a lone leaf has depth 1).
func (t *M5Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *m5node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Render prints the tree in the paper's Figure 9 layout: the split
// structure with numbered linear models, followed by each model's
// equation.
func (t *M5Tree) Render(target string) string {
	var b strings.Builder
	var models []*Linear
	var walk func(n *m5node, indent int)
	walk = func(n *m5node, indent int) {
		pad := strings.Repeat("|   ", indent)
		if n.leaf {
			models = append(models, n.model)
			fmt.Fprintf(&b, "%sLM%d (n=%d)\n", pad, len(models), n.n)
			return
		}
		fmt.Fprintf(&b, "%s%s <= %.4g:\n", pad, t.Names[n.feat], n.thresh)
		walk(n.left, indent+1)
		fmt.Fprintf(&b, "%s%s > %.4g:\n", pad, t.Names[n.feat], n.thresh)
		walk(n.right, indent+1)
	}
	walk(t.root, 0)
	b.WriteString("\n")
	for i, m := range models {
		fmt.Fprintf(&b, "LM%d: %s = %s\n", i+1, target, m.String())
	}
	return b.String()
}

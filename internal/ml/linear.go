package ml

import (
	"fmt"
	"math"
	"strings"
)

// Linear is a ridge-regularized least-squares linear model, the leaf model
// of the M5 trees (Figure 9's "LM1: halo = 0*tsize - 0.1598*dsize + ...").
type Linear struct {
	Names []string
	W     []float64
	B     float64
}

// FitLinear fits y ~ X with L2 regularization strength lambda (on the
// weights, not the intercept) by solving the normal equations with
// Gaussian elimination and partial pivoting. An empty dataset yields the
// zero model; a constant dataset yields an intercept-only model.
func FitLinear(d *Dataset, lambda float64) *Linear {
	p := d.Features()
	m := &Linear{Names: d.Names, W: make([]float64, p)}
	n := d.Len()
	if n == 0 {
		return m
	}
	// Build the (p+1)x(p+1) system A beta = b over [features..., 1].
	dim := p + 1
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim+1)
	}
	for _, row := range d.X {
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][p] += row[i]
			a[p][i] += row[i]
		}
	}
	a[p][p] = float64(n)
	for r, row := range d.X {
		for i := 0; i < p; i++ {
			a[i][dim] += row[i] * d.Y[r]
		}
		a[p][dim] += d.Y[r]
	}
	for i := 0; i < p; i++ {
		a[i][i] += lambda
	}

	beta, ok := solve(a)
	if !ok {
		// Singular even with regularization: fall back to the mean.
		m.B = d.YMean()
		return m
	}
	copy(m.W, beta[:p])
	m.B = beta[p]
	return m
}

// solve performs in-place Gaussian elimination with partial pivoting on an
// augmented matrix and returns the solution vector.
func solve(a [][]float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		best, bestAbs := col, math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > bestAbs {
				best, bestAbs = r, v
			}
		}
		if bestAbs < 1e-12 {
			return nil, false
		}
		a[col], a[best] = a[best], a[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := a[r][n]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// Predict implements Model.
func (l *Linear) Predict(x []float64) float64 {
	s := l.B
	for i, w := range l.W {
		s += w * x[i]
	}
	return s
}

// String renders the model in the paper's Figure 9 style.
func (l *Linear) String() string {
	var b strings.Builder
	for i, w := range l.W {
		if w == 0 {
			continue
		}
		if b.Len() > 0 {
			if w >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				w = -w
			}
		}
		fmt.Fprintf(&b, "%.4g*%s", w, l.Names[i])
	}
	if b.Len() == 0 {
		return fmt.Sprintf("%.4g", l.B)
	}
	if l.B >= 0 {
		fmt.Fprintf(&b, " + %.4g", l.B)
	} else {
		fmt.Fprintf(&b, " - %.4g", -l.B)
	}
	return b.String()
}

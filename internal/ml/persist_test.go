package ml

import (
	"encoding/json"
	"testing"
)

func TestM5RoundTrip(t *testing.T) {
	d := synthDataset(400, 0.05, 51)
	orig := FitM5(d, DefaultM5Options())
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back M5Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Predictions must be bit-identical across the round trip.
	for _, x := range d.X[:50] {
		if orig.Predict(x) != back.Predict(x) {
			t.Fatal("M5 prediction changed across JSON round trip")
		}
	}
	if back.Leaves() != orig.Leaves() || back.Depth() != orig.Depth() {
		t.Error("tree shape changed across round trip")
	}
}

func TestM5UnmarshalRejectsBad(t *testing.T) {
	var tr M5Tree
	for _, bad := range []string{
		`{"names":["a"],"opts":{},"root":null}`,
		`{"names":["a"],"opts":{},"root":{"leaf":true}}`,                                         // leaf without model
		`{"names":["a"],"opts":{},"root":{"feat":5,"left":{"leaf":true},"right":{"leaf":true}}}`, // bad feature
		`not json`,
	} {
		if err := json.Unmarshal([]byte(bad), &tr); err == nil {
			t.Errorf("accepted invalid tree: %s", bad)
		}
	}
}

func TestREPRoundTrip(t *testing.T) {
	d := synthDataset(300, 0.05, 53)
	orig := FitREP(d, DefaultREPOptions())
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back REPTree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, x := range d.X[:50] {
		if orig.Predict(x) != back.Predict(x) {
			t.Fatal("REP prediction changed across JSON round trip")
		}
		if orig.Classify(x) != back.Classify(x) {
			t.Fatal("REP classification changed across JSON round trip")
		}
	}
}

func TestREPUnmarshalRejectsBad(t *testing.T) {
	var tr REPTree
	for _, bad := range []string{
		`{"names":["a"],"opts":{},"root":null}`,
		`{"names":["a"],"opts":{},"root":{"feat":2,"left":{"leaf":true},"right":{"leaf":true}}}`,
	} {
		if err := json.Unmarshal([]byte(bad), &tr); err == nil {
			t.Errorf("accepted invalid tree: %s", bad)
		}
	}
}

func TestSVMRoundTrip(t *testing.T) {
	d := NewDataset("x", "y")
	for i := 0; i < 100; i++ {
		label := -1.0
		if i%2 == 0 {
			label = 1
		}
		d.Add([]float64{float64(i), float64(i % 7)}, label)
	}
	orig, err := FitSVM(d, DefaultSVMOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back SVM
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, x := range d.X[:20] {
		if orig.Margin(x) != back.Margin(x) {
			t.Fatal("SVM margin changed across JSON round trip")
		}
	}
}

func TestSVMUnmarshalRejectsBad(t *testing.T) {
	var m SVM
	for _, bad := range []string{
		`{"names":["a","b"],"w":[1],"b":0,"mean":[0,0],"scale":[1,1]}`, // arity
		`{"names":["a"],"w":[1],"b":0,"mean":[0],"scale":[0]}`,         // zero scale
	} {
		if err := json.Unmarshal([]byte(bad), &m); err == nil {
			t.Errorf("accepted invalid SVM: %s", bad)
		}
	}
}

package engine

// Tests for the N-GPU extension (the paper's future work: "incorporating
// more than two GPUs"). The tuning-space encoding still distinguishes
// only 0/1/2 GPUs; wider runs are requested through Options.GPUs on a
// system widened with hw.WithGPUCount.

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

func wide4() hw.System { return hw.WithGPUCount(hw.I7_2600K(), 4) }

func TestSimulate4GPUsMatchesSerial(t *testing.T) {
	sys := wide4()
	dim := 64
	k := kernels.NewSynthetic(3, 1)
	want := Reference(dim, k)
	for _, par := range []plan.Params{
		{CPUTile: 4, Band: 40, GPUTile: 1, Halo: 6},
		{CPUTile: 8, Band: 55, GPUTile: 1, Halo: 0},
		{CPUTile: 2, Band: 40, GPUTile: 4, Halo: 3},
	} {
		for _, n := range []int{3, 4} {
			res, g, err := SimulateOpts(sys, dim, k, par, Options{GPUs: n})
			if err != nil {
				t.Fatalf("%v gpus=%d: %v", par, n, err)
			}
			if !g.Equal(want) {
				t.Errorf("%v gpus=%d: functional result differs from serial", par, n)
			}
			if res.RTimeNs <= 0 {
				t.Errorf("%v gpus=%d: non-positive rtime", par, n)
			}
		}
	}
}

func TestEstimateAgreesWithSimulate4GPUs(t *testing.T) {
	sys := wide4()
	dim := 72
	k := kernels.NewSynthetic(40, 1)
	inst := plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()}
	for _, n := range []int{2, 3, 4} {
		par := plan.Params{CPUTile: 8, Band: 50, GPUTile: 1, Halo: 5}
		est, err := Estimate(sys, inst, par, Options{GPUs: n})
		if err != nil {
			t.Fatal(err)
		}
		sim, _, err := SimulateOpts(sys, dim, k, par, Options{GPUs: n})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(est.RTimeNs, sim.RTimeNs, 1e-6) {
			t.Errorf("gpus=%d: estimate %v != simulate %v", n, est.RTimeNs, sim.RTimeNs)
		}
		if est.Kernels != sim.Kernels || est.Swaps != sim.Swaps {
			t.Errorf("gpus=%d: kernel/swap counts differ", n)
		}
	}
}

func TestMoreGPUsScaleAtCoarseGrain(t *testing.T) {
	// At very coarse granularity four devices must beat two, which must
	// beat one; swap overheads grow with device count, so the gain per
	// device shrinks.
	sys := wide4()
	inst := plan.Instance{Dim: 2700, TSize: 12000, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: 2600, GPUTile: 1, Halo: 24}
	rt := func(n int) float64 {
		r, err := Estimate(sys, inst, par, Options{GPUs: n})
		if err != nil {
			t.Fatal(err)
		}
		return r.RTimeNs
	}
	two, three, four := rt(0), rt(3), rt(4)
	if !(four < three && three < two) {
		t.Errorf("scaling violated: 2 GPUs %v, 3 GPUs %v, 4 GPUs %v", two, three, four)
	}
	gain23 := two / three
	gain34 := three / four
	if gain34 >= gain23 {
		t.Errorf("marginal gain must shrink: 2->3 %.3f, 3->4 %.3f", gain23, gain34)
	}
}

func TestMoreGPUsHurtAtFineGrain(t *testing.T) {
	// At fine granularity the extra swap traffic must make four devices
	// worse than two: the trade-off does not scale for free.
	sys := wide4()
	inst := plan.Instance{Dim: 1900, TSize: 50, DSize: 5}
	par := plan.Params{CPUTile: 8, Band: 1800, GPUTile: 1, Halo: 2}
	two, err := Estimate(sys, inst, par, Options{})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Estimate(sys, inst, par, Options{GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.RTimeNs <= two.RTimeNs {
		t.Errorf("4 GPUs (%v) should lose to 2 (%v) at fine grain",
			four.RTimeNs, two.RTimeNs)
	}
}

func TestGPUWideningRequiresDevices(t *testing.T) {
	sys := hw.I7_2600K() // only two devices
	inst := plan.Instance{Dim: 500, TSize: 1000, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: 400, GPUTile: 1, Halo: 5}
	if _, err := Estimate(sys, inst, par, Options{GPUs: 4}); err == nil {
		t.Error("widening past the device count must fail")
	}
	k := kernels.NewSynthetic(10, 1)
	if _, _, err := SimulateOpts(sys, 64, k, plan.Params{CPUTile: 4, Band: 40, GPUTile: 1, Halo: 5},
		Options{GPUs: 4}); err == nil {
		t.Error("simulate widening past the device count must fail")
	}
}

func TestWideningIgnoredForSingleGPUConfigs(t *testing.T) {
	// Options.GPUs only applies to halo >= 0 configurations; single-GPU
	// and all-CPU plans are unchanged.
	sys := wide4()
	inst := plan.Instance{Dim: 700, TSize: 2000, DSize: 1}
	one := plan.Params{CPUTile: 8, Band: 600, GPUTile: 1, Halo: -1}
	a, err := Estimate(sys, inst, one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(sys, inst, one, Options{GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.RTimeNs != b.RTimeNs {
		t.Error("widening must not affect single-GPU plans")
	}
}

package engine

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

func rectInstance(rows, cols int, k kernels.Kernel) plan.Instance {
	return plan.Instance{Rows: rows, Cols: cols, TSize: k.TSize(), DSize: k.DSize()}
}

func TestEstimateRectangularInstance(t *testing.T) {
	// The analytic estimator must accept rows != cols and account for
	// every cell across the three phases.
	sys := hw.I7_2600K()
	k := kernels.NewSynthetic(100, 1)
	inst := rectInstance(300, 900, k)
	for _, par := range []plan.Params{
		CPUOnlyParams(8),
		{CPUTile: 4, Band: 100, GPUTile: 1, Halo: -1},
		{CPUTile: 4, Band: 200, GPUTile: 8, Halo: 10},
		GPUOnlyParamsFor(inst),
	} {
		res, err := Estimate(sys, inst, par, Options{})
		if err != nil {
			t.Fatalf("%v: %v", par, err)
		}
		if res.RTimeNs <= 0 {
			t.Errorf("%v: non-positive runtime", par)
		}
		if got := res.Plan.GPUCells() + res.Plan.CPUCells(); got != inst.Cells() {
			t.Errorf("%v: phases cover %d cells, want %d", par, got, inst.Cells())
		}
	}
	// Full offload covers every diagonal of the rectangle.
	pl, err := plan.Build(inst, GPUOnlyParamsFor(inst))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.AllGPU() {
		t.Errorf("GPUOnlyParamsFor does not offload all diagonals: [%d,%d] of %d",
			pl.GLo, pl.GHi, inst.NumDiags())
	}
}

func TestSimulateRectMatchesSerialReference(t *testing.T) {
	// The functional simulation of a rectangular instance must produce a
	// grid bit-identical to the native serial sweep, in both orientations
	// and for hybrid, all-CPU and dual-GPU configurations.
	sys := hw.I7_2600K()
	for _, shape := range [][2]int{{30, 70}, {70, 30}} {
		rows, cols := shape[0], shape[1]
		for _, k := range []kernels.Kernel{
			kernels.NewSeqCompare(),
			kernels.NewSynthetic(3, 2),
		} {
			want := ReferenceRect(rows, cols, k)
			for _, par := range []plan.Params{
				CPUOnlyParams(4),
				{CPUTile: 4, Band: 20, GPUTile: 1, Halo: -1},
				{CPUTile: 4, Band: 20, GPUTile: 4, Halo: 3},
				GPUOnlyParamsFor(rectInstance(rows, cols, k)),
			} {
				res, g, err := SimulateInst(sys, plan.Instance{Rows: rows, Cols: cols}, k, par, Options{})
				if err != nil {
					t.Fatalf("%dx%d %s %v: %v", rows, cols, k.Name(), par, err)
				}
				if !g.Equal(want) {
					t.Errorf("%dx%d %s %v: simulated grid differs from serial reference",
						rows, cols, k.Name(), par)
				}
				if res.RTimeNs <= 0 {
					t.Errorf("%dx%d %s %v: non-positive virtual time", rows, cols, k.Name(), par)
				}
			}
		}
	}
}

func TestSimulateRectAgreesWithEstimate(t *testing.T) {
	// The analytic and functional paths walk the same choreography, so
	// their virtual times must agree on rectangular instances too.
	sys := hw.I7_3820()
	k := kernels.NewSynthetic(50, 1)
	rows, cols := 40, 90
	inst := rectInstance(rows, cols, k)
	for _, par := range []plan.Params{
		CPUOnlyParams(8),
		{CPUTile: 4, Band: 30, GPUTile: 4, Halo: -1},
		{CPUTile: 4, Band: 40, GPUTile: 1, Halo: 5},
	} {
		est, err := Estimate(sys, inst, par, Options{})
		if err != nil {
			t.Fatalf("estimate %v: %v", par, err)
		}
		sim, _, err := SimulateInst(sys, plan.Instance{Rows: rows, Cols: cols}, k, par, Options{})
		if err != nil {
			t.Fatalf("simulate %v: %v", par, err)
		}
		diff := est.RTimeNs - sim.RTimeNs
		if diff < 0 {
			diff = -diff
		}
		if rel := diff / est.RTimeNs; rel > 1e-6 {
			t.Errorf("%v: estimate %.3f != simulate %.3f (rel %g)",
				par, est.RTimeNs, sim.RTimeNs, rel)
		}
	}
}

func TestSerialNsRect(t *testing.T) {
	// The serial baseline scales with the cell count, not a squared side.
	sys := hw.I3_540()
	k := kernels.NewSeqCompare()
	rect := rectInstance(100, 400, k)
	square := plan.Instance{Dim: 200, TSize: k.TSize(), DSize: k.DSize()}
	if rect.Cells() != square.Cells() {
		t.Fatal("test shapes must have equal cell counts")
	}
	if a, b := SerialNs(sys, rect), SerialNs(sys, square); a != b {
		t.Errorf("serial baseline depends on shape, not cells: %g vs %g", a, b)
	}
}

// Package engine executes three-phase wavefront plans on the modeled
// heterogeneous systems. It provides two equivalent views of a run:
//
//   - Estimate: a fast analytic walk of the plan that returns virtual time
//     and a cost breakdown without touching any data. The exhaustive
//     search evaluates hundreds of thousands of configurations through
//     this path.
//   - Simulate: a functional discrete-event simulation through the simcl
//     runtime that computes real cell values while accumulating exactly
//     the same modeled costs. Tests assert that both paths agree, so the
//     cheap path is trustworthy.
//
// Both derive every duration from the hw cost models; the choreography
// (phases, per-period device lockstep, halo swap schedule, transfer sizes)
// is defined once in this package.
package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cpuexec"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
	"repro/internal/simcl"
	"repro/internal/telemetry"
)

// SerialTile is the tile side used by the optimized sequential baseline.
const SerialTile = 8

// DefaultThresholdNs is the paper's 90-second exploration cutoff.
const DefaultThresholdNs = 90e9

// Options control an estimate.
type Options struct {
	// ThresholdNs censors runs longer than this; 0 disables censoring.
	ThresholdNs float64
	// GPUs, when > 2, widens a multi-GPU configuration (halo >= 0) to
	// that many devices — the paper's future-work extension beyond two
	// GPUs. It is clamped to the system's device count and ignored for
	// single-GPU and all-CPU configurations.
	GPUs int
	// CollectTrace records a command timeline during Simulate (ignored by
	// Estimate); the trace is returned in Result.Trace.
	CollectTrace bool
}

// Breakdown itemizes where the virtual time went.
type Breakdown struct {
	Phase1Ns float64 // leading CPU triangle
	GPUNs    float64 // whole GPU phase including transfers and swaps
	Phase3Ns float64 // trailing CPU triangle

	StartupNs float64 // device context creation and build
	LaunchNs  float64 // accumulated kernel launch overhead
	ComputeNs float64 // on-device compute including barrier steps
	XferNs    float64 // input + output transfers
	SwapNs    float64 // halo exchange transfers

	Kernels         int
	Swaps           int
	RedundantPoints int
	// FrontierSteps is the number of barrier-separated wavefront steps
	// of the executed schedule. The modeled three-phase run sweeps the
	// anti-diagonal frontier, so it equals the diagonal count; consumers
	// must use it (not grid.NumDiagsRect recomputed from the shape) for
	// progress accounting, because irregular frontier executions report
	// their own, generally smaller, step counts.
	FrontierSteps int
}

// Result is the outcome of one modeled run.
type Result struct {
	// RTimeNs is the end-to-end virtual runtime.
	RTimeNs float64
	// Censored is set when the run exceeded Options.ThresholdNs and was
	// cut off (the paper's 90 s rule); RTimeNs then holds the threshold.
	Censored bool
	Plan     *plan.Plan
	// Trace holds the command timeline when Options.CollectTrace was set
	// on a Simulate call.
	Trace *simcl.Trace
	Breakdown
}

// RTimeSec returns the runtime in seconds.
func (r Result) RTimeSec() float64 { return r.RTimeNs / 1e9 }

// validate checks that the system can satisfy the plan's device demands.
func validate(sys hw.System, par plan.Params) error {
	need := par.GPUCount()
	if need > sys.MaxGPUs() {
		return fmt.Errorf("engine: config needs %d GPU(s) but %s has %d usable",
			need, sys.Name, sys.MaxGPUs())
	}
	return nil
}

// cpuPhaseNs models a tiled parallel CPU phase over cell-diagonals
// [lo, hi]: each tile-diagonal contributes its cells divided by the
// available parallelism (capped by the tile wavefront width) plus one
// barrier.
func cpuPhaseNs(sys hw.System, inst plan.Instance, ct, lo, hi int) float64 {
	if hi < lo {
		return 0
	}
	rows, cols := inst.Shape()
	// Masked instances only pay for their live fraction of each
	// tile-diagonal: dead cells are no-ops (skipped entirely on the
	// frontier path), so charging the full rectangle would overestimate
	// triangular and sparse workloads.
	per := sys.CPU.PointNs(inst.TSize, ct, inst.ElemBytes()) * inst.LiveFrac()
	total := 0.0
	for _, td := range plan.CPUTileDiagsRect(rows, cols, ct, lo, hi) {
		p := math.Min(float64(td.NTiles), sys.CPU.EffParallel)
		total += float64(td.Cells)*per/p + sys.CPU.TileBarrierNs
	}
	return total
}

// SerialNs returns the optimized sequential baseline: a single-core sweep
// with the serial-best tile size and no synchronization.
func SerialNs(sys hw.System, inst plan.Instance) float64 {
	ct := SerialTile
	if ct > inst.MinSide() {
		ct = inst.MinSide()
	}
	per := sys.CPU.PointNs(inst.TSize, ct, inst.ElemBytes())
	return float64(inst.WorkCells()) * per
}

// MeasureNs returns the modeled runtime of actually executing a tuning
// decision on sys — the stand-in for wall-clock timing a real run, used
// by the job executor: the optimized sequential baseline when serial is
// set, otherwise the uncensored hybrid estimate of par.
func MeasureNs(sys hw.System, inst plan.Instance, serial bool, par plan.Params) (float64, error) {
	ns, _, err := MeasureStepsNs(sys, inst, serial, par)
	return ns, err
}

// MeasureStepsNs is MeasureNs extended with the executed schedule's
// wavefront step count: the modeled run's FrontierSteps for a hybrid
// execution, and 1 for the serial baseline (a single uninterrupted
// row-major sweep has no inter-step barriers). Progress and throughput
// reporting must derive step totals from here rather than recomputing
// NumDiags from the shape, which misstates irregular runs.
func MeasureStepsNs(sys hw.System, inst plan.Instance, serial bool, par plan.Params) (float64, int, error) {
	if serial {
		return SerialNs(sys, inst), 1, nil
	}
	res, err := Estimate(sys, inst, par, Options{})
	if err != nil {
		return 0, 0, err
	}
	return res.RTimeNs, res.FrontierSteps, nil
}

// MeasureStepsNsCtx is MeasureStepsNs wrapped in an engine.measure
// trace span attached to ctx's span tree, annotated with the executed
// shape and schedule (serial vs hybrid, modeled time, step count). The
// measurement itself is identical; ctx carries only telemetry, not
// cancellation — the engine's analytic walk is not interruptible.
func MeasureStepsNsCtx(ctx context.Context, sys hw.System, inst plan.Instance, serial bool, par plan.Params) (float64, int, error) {
	_, span := telemetry.StartSpan(ctx, "engine.measure")
	if span != nil {
		rows, cols := inst.Shape()
		span.Annotate("system", sys.Name).
			Annotate("shape", fmt.Sprintf("%dx%d", rows, cols)).
			Annotate("serial", serial)
	}
	ns, steps, err := MeasureStepsNs(sys, inst, serial, par)
	if span != nil {
		if err == nil {
			span.Annotate("modeled_ns", fmt.Sprintf("%.0f", ns)).Annotate("steps", steps)
		} else {
			span.Annotate("error", err)
		}
		span.End()
	}
	return ns, steps, err
}

// gpuSchedule captures the device-side choreography of the GPU phase so
// the analytic and functional paths walk identical structures.
type gpuSchedule struct {
	nGPU     int
	xferIn   []int // bytes per device
	xferOut  []int
	swapByte int
	periods  []gpuPeriod
}

type gpuPeriod struct {
	// launches[dev] is the launch list of one device for this period.
	launches [][]launchSpec
	// swapAfter is true when a halo exchange follows the period; each of
	// the nGPU-1 partition boundaries then moves swapByte bytes through
	// the host (2 transfers per boundary).
	swapAfter bool
}

// launchSpec is one kernel launch covering the device's partitions of a
// chunk of consecutive diagonals (chunk length = gpu-tile).
type launchSpec struct {
	points    int
	syncSteps int
	inflate   float64
	// segs lists the covered row segments for functional execution.
	segs []diagSeg
}

type diagSeg struct {
	d, rowLo, rowHi int // rows [rowLo, rowHi] of diagonal d; empty if lo>hi
}

// buildGPUSchedule constructs the phase-2 choreography for a plan.
// wantGPUs > 2 widens a dual-GPU configuration to that many devices.
func buildGPUSchedule(pl *plan.Plan, functional bool, wantGPUs int) *gpuSchedule {
	nGPU := pl.Par.GPUCount()
	if nGPU == 2 && wantGPUs > 2 {
		nGPU = wantGPUs
	}
	if nGPU == 0 || pl.GPUDiags() == 0 {
		return nil
	}
	inst := pl.Inst
	rows, cols := inst.Shape()
	elem := inst.ElemBytes()
	sch := &gpuSchedule{nGPU: nGPU, xferIn: make([]int, nGPU), xferOut: make([]int, nGPU)}

	// Input: the two predecessor diagonals feeding the band, split across
	// devices.
	inBytes := (grid.DiagLenRect(rows, cols, pl.GLo-1) + grid.DiagLenRect(rows, cols, pl.GLo-2)) * elem
	for dev := 0; dev < nGPU; dev++ {
		sch.xferIn[dev] = inBytes / nGPU
	}
	// Output: the full band region returns to the host; the last device
	// absorbs the rounding remainder.
	outCells := pl.GPUCells()
	for dev := 0; dev < nGPU; dev++ {
		sch.xferOut[dev] = outCells / nGPU * elem
	}
	sch.xferOut[nGPU-1] = (outCells - (nGPU-1)*(outCells/nGPU)) * elem

	h := pl.Par.Halo
	period := pl.GPUDiags()
	if nGPU >= 2 {
		period = pl.SwapPeriod()
		swapElems := h
		if swapElems < 1 {
			swapElems = 1
		}
		sch.swapByte = swapElems * elem
	}
	g := pl.Par.GPUTile
	inflate := 1.0
	sync := 0
	if g > 1 {
		inflate = float64(2*g-1) / float64(g)
		sync = 2*g - 1
	}

	for ds := pl.GLo; ds <= pl.GHi; ds += period {
		m := period
		if ds+m-1 > pl.GHi {
			m = pl.GHi - ds + 1
		}
		p := gpuPeriod{launches: make([][]launchSpec, nGPU)}
		p.swapAfter = nGPU >= 2 && ds+m <= pl.GHi
		// Partition boundary rows for this period, cut from its first
		// diagonal: bounds[j] is the first row of device j's share.
		a0 := grid.DiagStartRowRect(rows, cols, ds)
		l0 := grid.DiagLenRect(rows, cols, ds)
		bounds := make([]int, nGPU+1)
		for j := 0; j <= nGPU; j++ {
			bounds[j] = a0 + j*l0/nGPU
		}
		for dev := 0; dev < nGPU; dev++ {
			for c0 := 0; c0 < m; c0 += g {
				cn := g
				if c0+cn > m {
					cn = m - c0
				}
				spec := launchSpec{inflate: inflate}
				if g > 1 {
					spec.syncSteps = sync
				}
				for k := c0; k < c0+cn; k++ {
					d := ds + k
					lo, hi := devRows(rows, cols, d, dev, nGPU, bounds, m-1-k)
					if hi < lo {
						continue
					}
					spec.points += hi - lo + 1
					if functional {
						spec.segs = append(spec.segs, diagSeg{d: d, rowLo: lo, rowHi: hi})
					}
				}
				if lf := inst.LiveFrac(); lf < 1 && spec.points > 0 {
					// Charge the launch for the live share of its covered
					// cells. The functional segs still span every cell —
					// masked kernels write their dead region's zeros, so
					// the simulated matrix stays identical to a dense
					// sweep — but timing reflects real work only.
					scaled := int(math.Round(float64(spec.points) * lf))
					if scaled < 1 {
						scaled = 1
					}
					spec.points = scaled
				}
				if spec.points > 0 {
					p.launches[dev] = append(p.launches[dev], spec)
				}
			}
		}
		sch.periods = append(sch.periods, p)
	}
	return sch
}

// devRows returns the inclusive row range device dev computes on diagonal
// d of a rows x cols grid. bounds holds the period's partition cut rows
// (bounds[j] is the first row of device j's share). A device below a
// partition boundary additionally computes a shrinking overlap of ov rows
// above its cut (the redundant halo computation of Section 2.1), because
// the wavefront dependencies point towards lower rows. With one device the
// whole diagonal is returned.
func devRows(rows, cols, d, dev, nGPU int, bounds []int, ov int) (lo, hi int) {
	a := grid.DiagStartRowRect(rows, cols, d)
	b := a + grid.DiagLenRect(rows, cols, d) - 1
	if nGPU == 1 {
		return a, b
	}
	if dev == 0 {
		lo = a
	} else {
		lo = bounds[dev] - ov
		if lo < a {
			lo = a
		}
	}
	if dev == nGPU-1 {
		hi = b
	} else {
		hi = bounds[dev+1] - 1
		if hi > b {
			hi = b
		}
	}
	return lo, hi
}

// Estimate models a run of inst with parameters par on sys and returns
// its virtual time and breakdown without computing any data.
func Estimate(sys hw.System, inst plan.Instance, par plan.Params, opts Options) (Result, error) {
	if err := validate(sys, par); err != nil {
		return Result{}, err
	}
	if opts.GPUs > len(sys.GPUs) {
		return Result{}, fmt.Errorf("engine: %d GPUs requested but %s has %d",
			opts.GPUs, sys.Name, len(sys.GPUs))
	}
	pl, err := plan.Build(inst, par)
	if err != nil {
		return Result{}, err
	}
	res := Result{Plan: pl}
	res.FrontierSteps = inst.NumDiags()
	over := func() bool {
		if opts.ThresholdNs > 0 && res.RTimeNs > opts.ThresholdNs {
			res.RTimeNs = opts.ThresholdNs
			res.Censored = true
			return true
		}
		return false
	}

	res.Phase1Ns = cpuPhaseNs(sys, inst, par.CPUTile, pl.P1Lo, pl.P1Hi)
	res.RTimeNs += res.Phase1Ns
	if over() {
		return res, nil
	}

	if sch := buildGPUSchedule(pl, false, opts.GPUs); sch != nil {
		gpuStart := res.RTimeNs
		// Startup is concurrent across devices; identical models per
		// system make max == single value, but take max for generality.
		var startup float64
		for dev := 0; dev < sch.nGPU; dev++ {
			startup = math.Max(startup, sys.GPUs[dev].StartupNs)
			res.StartupNs += sys.GPUs[dev].StartupNs
		}
		res.RTimeNs += startup
		// Input transfers serialize on the link.
		for dev := 0; dev < sch.nGPU; dev++ {
			x := sys.Link.XferNs(sch.xferIn[dev])
			res.XferNs += x
			res.RTimeNs += x
		}
		for _, p := range sch.periods {
			var span float64
			for dev := 0; dev < sch.nGPU; dev++ {
				var devNs float64
				for _, l := range p.launches[dev] {
					dur := sys.GPUs[dev].LaunchDurationNs(sys.CPU, l.points, inst.TSize,
						inst.DSize, l.syncSteps, l.inflate)
					devNs += dur
					res.Kernels++
					res.LaunchNs += sys.GPUs[dev].LaunchNs
					res.ComputeNs += dur - sys.GPUs[dev].LaunchNs
				}
				span = math.Max(span, devNs)
			}
			res.RTimeNs += span
			if p.swapAfter {
				s := float64(2*(sch.nGPU-1)) * sys.Link.XferNs(sch.swapByte)
				res.SwapNs += s
				res.RTimeNs += s
				res.Swaps++
			}
			if over() {
				return res, nil
			}
		}
		for dev := 0; dev < sch.nGPU; dev++ {
			x := sys.Link.XferNs(sch.xferOut[dev])
			res.XferNs += x
			res.RTimeNs += x
		}
		res.RedundantPoints = pl.RedundantPoints()
		res.GPUNs = res.RTimeNs - gpuStart
		if over() {
			return res, nil
		}
	}

	res.Phase3Ns = cpuPhaseNs(sys, inst, par.CPUTile, pl.P3Lo, pl.P3Hi)
	res.RTimeNs += res.Phase3Ns
	over()
	return res, nil
}

// Simulate executes a functional run of kernel k (dim x dim) with
// parameters par on the modeled system: real cell values are computed via
// the simulated OpenCL runtime and CPU phases, and the returned result
// carries the virtual time of the discrete-event simulation.
func Simulate(sys hw.System, dim int, k kernels.Kernel, par plan.Params) (Result, *grid.Grid, error) {
	return SimulateOpts(sys, dim, k, par, Options{})
}

// SimulateOpts is Simulate with explicit options (e.g. widening to more
// than two GPUs).
func SimulateOpts(sys hw.System, dim int, k kernels.Kernel, par plan.Params, opts Options) (Result, *grid.Grid, error) {
	return SimulateInst(sys, plan.Instance{Dim: dim}, k, par, opts)
}

// SimulateRect is Simulate over a rectangular rows x cols grid.
func SimulateRect(sys hw.System, rows, cols int, k kernels.Kernel, par plan.Params) (Result, *grid.Grid, error) {
	return SimulateInst(sys, plan.Instance{Rows: rows, Cols: cols}, k, par, Options{})
}

// SimulateInst executes a functional run over the shape of inst; the
// granularity parameters (TSize, DSize) are always taken from the kernel.
func SimulateInst(sys hw.System, inst plan.Instance, k kernels.Kernel, par plan.Params, opts Options) (Result, *grid.Grid, error) {
	inst.TSize, inst.DSize = k.TSize(), k.DSize()
	if err := validate(sys, par); err != nil {
		return Result{}, nil, err
	}
	if opts.GPUs > len(sys.GPUs) {
		return Result{}, nil, fmt.Errorf("engine: %d GPUs requested but %s has %d",
			opts.GPUs, sys.Name, len(sys.GPUs))
	}
	pl, err := plan.Build(inst, par)
	if err != nil {
		return Result{}, nil, err
	}
	res := Result{Plan: pl}
	res.FrontierSteps = inst.NumDiags()
	rows, cols := inst.Shape()
	g := grid.NewRect(rows, cols, k.DSize())
	p := simcl.NewPlatform(sys)
	p.Functional = true
	if opts.CollectTrace {
		p.Trace = &simcl.Trace{}
		res.Trace = p.Trace
	}
	eng := p.Eng

	sch := buildGPUSchedule(pl, true, opts.GPUs)
	var steps []func(next func())

	// Phase 1: leading CPU triangle.
	if pl.P1Hi >= pl.P1Lo {
		dur := cpuPhaseNs(sys, inst, par.CPUTile, pl.P1Lo, pl.P1Hi)
		res.Phase1Ns = dur
		steps = append(steps, func(next func()) {
			p.HostCompute(dur, func() {
				// A dense diagonal frontier cannot dead-end, so the
				// frontier run never errors here.
				_ = cpuexec.RunSerialFrontier(k, g, grid.NewDiagRangeFrontier(rows, cols, pl.P1Lo, pl.P1Hi))
				next()
			})
		})
	}

	// Phase 2: the offloaded band.
	if sch != nil {
		var gpuT0 float64
		steps = append(steps,
			func(next func()) {
				gpuT0 = eng.Now()
				arrive := eng.Barrier(sch.nGPU, next)
				for dev := 0; dev < sch.nGPU; dev++ {
					p.Devs[dev].Start(arrive)
				}
			},
			func(next func()) {
				arrive := eng.Barrier(sch.nGPU, next)
				for dev := 0; dev < sch.nGPU; dev++ {
					p.Devs[dev].EnqueueXfer(sch.xferIn[dev], arrive)
				}
			})
		for _, period := range sch.periods {
			period := period
			steps = append(steps, func(next func()) {
				total := 0
				for dev := 0; dev < sch.nGPU; dev++ {
					total += len(period.launches[dev])
				}
				arrive := eng.Barrier(total, next)
				for dev := 0; dev < sch.nGPU; dev++ {
					for _, l := range period.launches[dev] {
						segs := l.segs
						p.Devs[dev].EnqueueKernel(simcl.KernelReq{
							Points:    l.points,
							TSize:     inst.TSize,
							DSize:     inst.DSize,
							SyncSteps: l.syncSteps,
							Inflate:   l.inflate,
							Body: func() {
								for _, s := range segs {
									for r := s.rowLo; r <= s.rowHi; r++ {
										k.Compute(g, r, s.d-r)
									}
								}
							},
						}, arrive)
					}
				}
			})
			if period.swapAfter {
				steps = append(steps, func(next func()) {
					// At each partition boundary the upper device's edge
					// rows go to the host and on to the device below; the
					// boundary exchanges chain on the shared link.
					res.Swaps++
					var chain func(b int)
					chain = func(b int) {
						if b >= sch.nGPU-1 {
							next()
							return
						}
						p.Devs[b].EnqueueXfer(sch.swapByte, func() {
							p.Devs[b+1].EnqueueXfer(sch.swapByte, func() { chain(b + 1) })
						})
					}
					chain(0)
				})
			}
		}
		steps = append(steps, func(next func()) {
			arrive := eng.Barrier(sch.nGPU, func() {
				res.GPUNs = eng.Now() - gpuT0
				next()
			})
			for dev := 0; dev < sch.nGPU; dev++ {
				p.Devs[dev].EnqueueXfer(sch.xferOut[dev], arrive)
			}
		})
	}

	// Phase 3: trailing CPU triangle.
	if pl.P3Hi >= pl.P3Lo {
		dur := cpuPhaseNs(sys, inst, par.CPUTile, pl.P3Lo, pl.P3Hi)
		res.Phase3Ns = dur
		steps = append(steps, func(next func()) {
			p.HostCompute(dur, func() {
				_ = cpuexec.RunSerialFrontier(k, g, grid.NewDiagRangeFrontier(rows, cols, pl.P3Lo, pl.P3Hi))
				next()
			})
		})
	}

	eng.Series(steps, nil)
	res.RTimeNs = eng.Run()

	// Fold device statistics into the breakdown.
	if sch != nil {
		for dev := 0; dev < sch.nGPU; dev++ {
			st := p.Devs[dev].Stats
			res.Kernels += st.Kernels
			res.StartupNs += st.StartupNs
			res.LaunchNs += st.LaunchNs
			res.ComputeNs += st.KernelNs
		}
		for dev := 0; dev < sch.nGPU; dev++ {
			res.XferNs += sys.Link.XferNs(sch.xferIn[dev]) + sys.Link.XferNs(sch.xferOut[dev])
		}
		res.SwapNs = float64(2*res.Swaps*(sch.nGPU-1)) * sys.Link.XferNs(sch.swapByte)
		res.RedundantPoints = pl.RedundantPoints()
	}
	return res, g, nil
}

// Reference computes the grid serially on the host, for verifying
// simulated results.
func Reference(dim int, k kernels.Kernel) *grid.Grid {
	return ReferenceRect(dim, dim, k)
}

// ReferenceRect computes a rows x cols grid serially on the host.
func ReferenceRect(rows, cols int, k kernels.Kernel) *grid.Grid {
	g := grid.NewRect(rows, cols, k.DSize())
	cpuexec.RunSerial(k, g)
	return g
}

// CPUOnlyParams returns the all-CPU configuration with the given tile.
func CPUOnlyParams(ct int) plan.Params {
	return plan.Params{CPUTile: ct, Band: -1, GPUTile: 1, Halo: -1}
}

// GPUOnlyParams returns the configuration that offloads every diagonal of
// a square dim-sized instance to a single GPU.
func GPUOnlyParams(dim int) plan.Params {
	return plan.Params{CPUTile: 1, Band: dim - 1, GPUTile: 1, Halo: -1}
}

// GPUOnlyParamsFor returns the full single-GPU offload configuration for
// an instance of any shape.
func GPUOnlyParamsFor(inst plan.Instance) plan.Params {
	return plan.Params{CPUTile: 1, Band: inst.MaxUsefulBand(), GPUTile: 1, Halo: -1}
}

package engine

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

// TestLiveCellScaling: a masked instance must be charged only for its
// live fraction — roughly half the dense runtime for the Nussinov
// triangle — in both the serial baseline and the hybrid estimate.
func TestLiveCellScaling(t *testing.T) {
	sys := hw.I7_2600K()
	n := 120
	dense := plan.Instance{Dim: n, TSize: kernels.NussinovTSize, DSize: 0}
	masked := dense
	masked.LiveCells = n * (n + 1) / 2

	if s, d := SerialNs(sys, masked), SerialNs(sys, dense); !approxEq(s, d*masked.LiveFrac(), 1e-9) {
		t.Errorf("SerialNs masked %v != dense %v x live fraction %v", s, d, masked.LiveFrac())
	}
	for _, par := range []plan.Params{
		CPUOnlyParams(8),
		{CPUTile: 8, Band: 40, GPUTile: 2, Halo: -1},
		{CPUTile: 4, Band: 30, GPUTile: 1, Halo: 6},
	} {
		est, err := Estimate(sys, masked, par, Options{})
		if err != nil {
			t.Fatalf("masked estimate %v: %v", par, err)
		}
		full, err := Estimate(sys, dense, par, Options{})
		if err != nil {
			t.Fatalf("dense estimate %v: %v", par, err)
		}
		if est.RTimeNs >= full.RTimeNs {
			t.Errorf("%v: masked runtime %v not below dense %v", par, est.RTimeNs, full.RTimeNs)
		}
		// Launch/startup/barrier overheads don't scale, so the ratio sits
		// between the live fraction and 1.
		if est.RTimeNs < full.RTimeNs*masked.LiveFrac()*0.9 {
			t.Errorf("%v: masked runtime %v implausibly below live-scaled dense %v",
				par, est.RTimeNs, full.RTimeNs*masked.LiveFrac())
		}
	}
}

// TestMaskedEstimateAgreesWithSimulate: the analytic and functional
// paths must stay in lockstep for masked instances too — both scale the
// same schedule by the same live fraction.
func TestMaskedEstimateAgreesWithSimulate(t *testing.T) {
	sys := hw.I7_2600K()
	n := 60
	k := kernels.NewNussinov(-1)
	inst := plan.Instance{Dim: n, TSize: k.TSize(), DSize: k.DSize(), LiveCells: n * (n + 1) / 2}
	for _, par := range []plan.Params{
		CPUOnlyParams(8),
		{CPUTile: 4, Band: 20, GPUTile: 1, Halo: -1},
		{CPUTile: 8, Band: 25, GPUTile: 4, Halo: 5},
	} {
		est, err := Estimate(sys, inst, par, Options{})
		if err != nil {
			t.Fatalf("estimate %v: %v", par, err)
		}
		sim, g, err := SimulateInst(sys, inst, k, par, Options{})
		if err != nil {
			t.Fatalf("simulate %v: %v", par, err)
		}
		if !approxEq(est.RTimeNs, sim.RTimeNs, 1e-6) {
			t.Errorf("%v: estimate %v != simulate %v", par, est.RTimeNs, sim.RTimeNs)
		}
		if est.FrontierSteps != sim.FrontierSteps {
			t.Errorf("%v: frontier steps differ: %d vs %d", par, est.FrontierSteps, sim.FrontierSteps)
		}
		if !g.Equal(Reference(n, k)) {
			t.Errorf("%v: masked simulation differs from serial reference", par)
		}
	}
}

// TestFrontierStepsAccounting: the modeled schedule sweeps the diagonal
// frontier, so its step count is the diagonal count — and the measuring
// entry point surfaces it (1 for the barrier-free serial sweep).
func TestFrontierStepsAccounting(t *testing.T) {
	sys := hw.I7_2600K()
	inst := plan.Instance{Rows: 40, Cols: 70, TSize: 3, DSize: 1}
	res, err := Estimate(sys, inst, CPUOnlyParams(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrontierSteps != inst.NumDiags() {
		t.Errorf("FrontierSteps = %d, want %d", res.FrontierSteps, inst.NumDiags())
	}
	ns, steps, err := MeasureStepsNs(sys, inst, false, CPUOnlyParams(8))
	if err != nil || ns <= 0 {
		t.Fatalf("MeasureStepsNs: ns=%v err=%v", ns, err)
	}
	if steps != inst.NumDiags() {
		t.Errorf("measured steps = %d, want %d", steps, inst.NumDiags())
	}
	_, steps, err = MeasureStepsNs(sys, inst, true, plan.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Errorf("serial steps = %d, want 1", steps)
	}
}

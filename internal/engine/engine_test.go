package engine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

func approxEq(a, b, rel float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*den
}

func TestEstimateCPUOnly(t *testing.T) {
	sys := hw.I7_2600K()
	inst := plan.Instance{Dim: 200, TSize: 100, DSize: 1}
	res, err := Estimate(sys, inst, CPUOnlyParams(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUNs != 0 || res.Kernels != 0 || res.StartupNs != 0 {
		t.Error("all-CPU run must have an empty GPU phase")
	}
	if res.Phase1Ns <= 0 || res.RTimeNs != res.Phase1Ns {
		t.Errorf("all-CPU rtime %v must equal phase-1 time %v", res.RTimeNs, res.Phase1Ns)
	}
	// Parallel CPU must beat serial but not exceed the core count.
	serial := SerialNs(sys, inst)
	speedup := serial / res.RTimeNs
	if speedup < 1 || speedup > float64(sys.CPU.Cores) {
		t.Errorf("CPU-only speedup %.2f implausible", speedup)
	}
}

func TestEstimateBreakdownAdds(t *testing.T) {
	sys := hw.I7_2600K()
	inst := plan.Instance{Dim: 400, TSize: 500, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: 150, GPUTile: 1, Halo: 20}
	res, err := Estimate(sys, inst, par, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.RTimeNs, res.Phase1Ns+res.GPUNs+res.Phase3Ns, 1e-9) {
		t.Errorf("phases %v+%v+%v != rtime %v",
			res.Phase1Ns, res.GPUNs, res.Phase3Ns, res.RTimeNs)
	}
	if res.Swaps == 0 || res.SwapNs <= 0 {
		t.Error("dual-GPU run must swap halos")
	}
	if res.RedundantPoints <= 0 {
		t.Error("positive halo must recompute points")
	}
}

func TestEstimateRejectsTooManyGPUs(t *testing.T) {
	sys := hw.I3_540() // single GPU
	inst := plan.Instance{Dim: 100, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 4, Band: 10, GPUTile: 1, Halo: 2}
	if _, err := Estimate(sys, inst, par, Options{}); err == nil {
		t.Error("dual-GPU config on a single-GPU system must fail")
	}
}

func TestEstimateCensors(t *testing.T) {
	sys := hw.I3_540()
	inst := plan.Instance{Dim: 3100, TSize: 12000, DSize: 5}
	res, err := Estimate(sys, inst, CPUOnlyParams(1), Options{ThresholdNs: DefaultThresholdNs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Censored {
		t.Fatal("a huge untiled serial-ish run must exceed 90s")
	}
	if res.RTimeNs != DefaultThresholdNs {
		t.Errorf("censored rtime = %v, want the threshold", res.RTimeNs)
	}
}

func TestSerialBaselineScales(t *testing.T) {
	sys := hw.I3_540()
	a := SerialNs(sys, plan.Instance{Dim: 500, TSize: 100, DSize: 1})
	b := SerialNs(sys, plan.Instance{Dim: 1000, TSize: 100, DSize: 1})
	if !approxEq(b/a, 4, 0.01) {
		t.Errorf("serial time must scale with dim²: ratio %v", b/a)
	}
}

func TestSimulateMatchesSerialReference(t *testing.T) {
	// The heart of the functional simulation: every hybrid configuration
	// must compute exactly the same grid as the serial sweep.
	sys := hw.I7_2600K()
	dim := 60
	for _, k := range []kernels.Kernel{
		kernels.NewSynthetic(3, 2),
		kernels.NewSeqCompare(),
	} {
		want := Reference(dim, k)
		for _, par := range []plan.Params{
			CPUOnlyParams(4),
			GPUOnlyParams(dim),
			{CPUTile: 4, Band: 20, GPUTile: 1, Halo: -1},
			{CPUTile: 8, Band: 20, GPUTile: 1, Halo: 5},
			{CPUTile: 2, Band: 30, GPUTile: 4, Halo: 0},
			{CPUTile: 5, Band: 50, GPUTile: 8, Halo: 4},
		} {
			res, g, err := Simulate(sys, dim, k, par)
			if err != nil {
				t.Fatalf("%s %v: %v", k.Name(), par, err)
			}
			if !g.Equal(want) {
				t.Errorf("%s %v: simulated grid differs from serial reference", k.Name(), par)
			}
			if res.RTimeNs <= 0 {
				t.Errorf("%s %v: non-positive rtime", k.Name(), par)
			}
		}
	}
}

func TestSimulateMatchesSerialProperty(t *testing.T) {
	// Property: random valid configurations preserve functional
	// correctness.
	sys := hw.I7_2600K()
	k := kernels.NewSynthetic(2, 1)
	dim := 40
	want := Reference(dim, k)
	f := func(rawBand, rawCt, rawHalo, rawG uint8) bool {
		band := int(rawBand)%(dim+1) - 1
		ct := int(rawCt)%dim + 1
		gt := []int{1, 2, 4, 8}[rawG%4]
		halo := -1
		if band >= 0 {
			if m := plan.MaxHaloFor(plan.Instance{Dim: dim, TSize: 2, DSize: 1}, band); m >= 0 {
				halo = int(rawHalo)%(m+2) - 1
			}
		}
		par := plan.Params{CPUTile: ct, Band: band, GPUTile: gt, Halo: halo}
		_, g, err := Simulate(sys, dim, k, par)
		if err != nil {
			return false
		}
		return g.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEstimateAgreesWithSimulate(t *testing.T) {
	// The analytic estimator and the discrete-event simulation must report
	// the same virtual time: they share formulas and choreography.
	sys := hw.I7_2600K()
	dim := 80
	k := kernels.NewSynthetic(50, 1)
	inst := plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()}
	for _, par := range []plan.Params{
		CPUOnlyParams(8),
		GPUOnlyParams(dim),
		{CPUTile: 4, Band: 30, GPUTile: 1, Halo: -1},
		{CPUTile: 8, Band: 30, GPUTile: 1, Halo: 8},
		{CPUTile: 8, Band: 30, GPUTile: 1, Halo: 0},
		{CPUTile: 2, Band: 50, GPUTile: 4, Halo: 12},
		{CPUTile: 10, Band: 70, GPUTile: 8, Halo: 3},
	} {
		est, err := Estimate(sys, inst, par, Options{})
		if err != nil {
			t.Fatalf("estimate %v: %v", par, err)
		}
		sim, _, err := Simulate(sys, dim, k, par)
		if err != nil {
			t.Fatalf("simulate %v: %v", par, err)
		}
		if !approxEq(est.RTimeNs, sim.RTimeNs, 1e-6) {
			t.Errorf("%v: estimate %v != simulate %v", par, est.RTimeNs, sim.RTimeNs)
		}
		if est.Kernels != sim.Kernels {
			t.Errorf("%v: kernel counts differ: %d vs %d", par, est.Kernels, sim.Kernels)
		}
		if est.Swaps != sim.Swaps {
			t.Errorf("%v: swap counts differ: %d vs %d", par, est.Swaps, sim.Swaps)
		}
	}
}

func TestEstimateAgreesWithSimulateOnI3(t *testing.T) {
	sys := hw.I3_540()
	dim := 70
	k := kernels.NewSynthetic(20, 5)
	inst := plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()}
	for _, par := range []plan.Params{
		{CPUTile: 4, Band: 25, GPUTile: 1, Halo: -1},
		GPUOnlyParams(dim),
	} {
		est, err := Estimate(sys, inst, par, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sim, _, err := Simulate(sys, dim, k, par)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(est.RTimeNs, sim.RTimeNs, 1e-6) {
			t.Errorf("%v: estimate %v != simulate %v", par, est.RTimeNs, sim.RTimeNs)
		}
	}
}

func TestMoreGPUsHelpAtHighGranularity(t *testing.T) {
	// For a large coarse-grained instance the dual-GPU configuration must
	// beat the single GPU, which must beat the CPU (the regime where the
	// paper's heatmaps choose halo >= 0).
	sys := hw.I7_2600K()
	inst := plan.Instance{Dim: 2700, TSize: 8000, DSize: 1}
	band := inst.Dim - 100
	one, err := Estimate(sys, inst, plan.Params{CPUTile: 8, Band: band, GPUTile: 1, Halo: -1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Estimate(sys, inst, plan.Params{CPUTile: 8, Band: band, GPUTile: 1, Halo: 40}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := Estimate(sys, inst, CPUOnlyParams(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(two.RTimeNs < one.RTimeNs && one.RTimeNs < cpu.RTimeNs) {
		t.Errorf("expected 2GPU < 1GPU < CPU, got %v, %v, %v",
			two.RTimeNs, one.RTimeNs, cpu.RTimeNs)
	}
}

func TestCPUWinsAtLowGranularity(t *testing.T) {
	// Small fine-grained instances must run fastest on the CPU (the
	// paper's "slower CPU cores beat the GPU for tsize<=100, dim<=1100"
	// on i7 systems).
	sys := hw.I7_2600K()
	inst := plan.Instance{Dim: 700, TSize: 10, DSize: 1}
	cpu, _ := Estimate(sys, inst, CPUOnlyParams(8), Options{})
	gpu, _ := Estimate(sys, inst, GPUOnlyParams(inst.Dim), Options{})
	if cpu.RTimeNs >= gpu.RTimeNs {
		t.Errorf("CPU (%v) must beat GPU (%v) on small fine instances",
			cpu.RTimeNs, gpu.RTimeNs)
	}
}

func TestHaloTradeoffHasInterior(t *testing.T) {
	// Halo 0 maximizes swaps; max halo maximizes redundant compute. For a
	// coarse instance some middle halo must beat halo=0: the trade-off the
	// paper tunes.
	sys := hw.I7_2600K()
	inst := plan.Instance{Dim: 1900, TSize: 2000, DSize: 1}
	band := inst.Dim - 100
	rt := func(h int) float64 {
		r, err := Estimate(sys, inst, plan.Params{CPUTile: 8, Band: band, GPUTile: 1, Halo: h}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r.RTimeNs
	}
	zero := rt(0)
	mid := rt(32)
	if mid >= zero {
		t.Errorf("halo=32 (%v) must beat halo=0 (%v) at coarse granularity", mid, zero)
	}
}

func TestGPUTilingHurtsAtHighGranularity(t *testing.T) {
	// Section 4.1.1: tiling inside the GPU only pays when kernel launches
	// dominate; with computation dominating it must lose.
	sys := hw.I3_540()
	inst := plan.Instance{Dim: 1900, TSize: 4000, DSize: 1}
	flat, _ := Estimate(sys, inst, plan.Params{CPUTile: 8, Band: 1898, GPUTile: 1, Halo: -1}, Options{})
	tiled, _ := Estimate(sys, inst, plan.Params{CPUTile: 8, Band: 1898, GPUTile: 8, Halo: -1}, Options{})
	if tiled.RTimeNs <= flat.RTimeNs {
		t.Errorf("gpu-tile must hurt at tsize=4000: tiled %v vs flat %v",
			tiled.RTimeNs, flat.RTimeNs)
	}
	// And help when launches dominate (tiny tsize).
	instSmall := plan.Instance{Dim: 1900, TSize: 10, DSize: 1}
	flatS, _ := Estimate(sys, instSmall, plan.Params{CPUTile: 8, Band: 1898, GPUTile: 1, Halo: -1}, Options{})
	tiledS, _ := Estimate(sys, instSmall, plan.Params{CPUTile: 8, Band: 1898, GPUTile: 8, Halo: -1}, Options{})
	if tiledS.RTimeNs >= flatS.RTimeNs {
		t.Errorf("gpu-tile must help at tsize=10: tiled %v vs flat %v",
			tiledS.RTimeNs, flatS.RTimeNs)
	}
}

func TestRTimeSec(t *testing.T) {
	r := Result{RTimeNs: 2.5e9}
	if r.RTimeSec() != 2.5 {
		t.Errorf("RTimeSec = %v, want 2.5", r.RTimeSec())
	}
}

func TestEstimateMonotoneInTsize(t *testing.T) {
	// Property: for a fixed configuration, runtime grows with granularity.
	sys := hw.I7_3820()
	f := func(rawA, rawB uint16) bool {
		a := float64(rawA%12000) + 1
		b := float64(rawB%12000) + 1
		if a > b {
			a, b = b, a
		}
		par := plan.Params{CPUTile: 8, Band: 100, GPUTile: 1, Halo: 10}
		ra, err1 := Estimate(sys, plan.Instance{Dim: 500, TSize: a, DSize: 1}, par, Options{})
		rb, err2 := Estimate(sys, plan.Instance{Dim: 500, TSize: b, DSize: 1}, par, Options{})
		return err1 == nil && err2 == nil && ra.RTimeNs <= rb.RTimeNs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimulateCollectsTrace(t *testing.T) {
	sys := hw.I7_2600K()
	k := kernels.NewSynthetic(5, 1)
	par := plan.Params{CPUTile: 4, Band: 30, GPUTile: 1, Halo: 4}
	res, _, err := SimulateOpts(sys, 60, k, par, Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Spans) == 0 {
		t.Fatal("trace not collected")
	}
	// The trace must span the whole run and include both devices + host.
	_, end := res.Trace.Span()
	if end != res.RTimeNs {
		t.Errorf("trace ends at %v, run at %v", end, res.RTimeNs)
	}
	for _, dev := range []int{-1, 0, 1} {
		if res.Trace.Busy(dev) <= 0 {
			t.Errorf("lane %d idle in trace", dev)
		}
	}
	// Without the option there is no trace.
	res2, _, err := Simulate(sys, 60, k, par)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Error("trace collected without the option")
	}
}

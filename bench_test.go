package repro

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md section 4 for the experiment index).
// Benchmarks report the headline quantities of each figure via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction run. The expensive artifacts (exhaustive search, trained
// tuners) are built once, outside the timed sections.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpuexec"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/jobs"
	"repro/internal/kernels"
	"repro/internal/ml"
	"repro/internal/plan"
	"repro/internal/retrain"
	"repro/internal/tunecache"
	"repro/wavefront"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

// benchContext returns the shared quick-configuration context with all
// searches and tuners pre-built.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.Quick())
		for _, sys := range benchCtx.Cfg.Systems {
			if _, err := benchCtx.Search(sys); err != nil {
				panic(err)
			}
			if _, err := benchCtx.Tuner(sys); err != nil {
				panic(err)
			}
		}
	})
	return benchCtx
}

// ---- Tables ----

func BenchmarkTable3SpaceEnumeration(b *testing.B) {
	space := core.DefaultSpace()
	sys := hw.I7_2600K()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := space.Size(sys)
		if n == 0 {
			b.Fatal("empty space")
		}
		b.ReportMetric(float64(n), "configs")
	}
}

func BenchmarkTable4Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Table4(hw.Systems())
		if len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---- Illustrative figures ----

func BenchmarkFig1Waveflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig1(64)) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig2ThreePhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3HaloPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Evaluation figures ----

func BenchmarkFig5Heatmaps(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sys := range ctx.Cfg.Systems {
			for _, dsize := range []int{1, 5} {
				d, err := ctx.Fig5(sys, dsize)
				if err != nil {
					b.Fatal(err)
				}
				if !d.BandMap.Complete() {
					b.Fatal("incomplete heatmap")
				}
			}
		}
	}
}

func BenchmarkFig6Baselines(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var last []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		b.ReportMetric(r.Best, "best_speedup_"+r.Sys.Name)
	}
}

func BenchmarkFig7AverageCase(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sys := range ctx.Cfg.Systems {
			for _, dsize := range []int{1, 5} {
				if _, err := ctx.Fig7(sys, dsize); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkFig8Violins(b *testing.B) {
	ctx := benchContext(b)
	i7 := hw.I7_2600K()
	dims := []int{ctx.Cfg.Space.Dims[0], ctx.Cfg.Space.Dims[len(ctx.Cfg.Space.Dims)-1]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, err := ctx.Fig8(i7, dims, []int{1, 5}, ctx.Cfg.Space.TSizes)
		if err != nil {
			b.Fatal(err)
		}
		if len(vs) == 0 {
			b.Fatal("no violins")
		}
	}
}

func BenchmarkFig9ModelTree(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := ctx.Fig9(hw.I7_2600K())
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkFig10Autotune(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ctx.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Efficiency, "efficiency_"+r.Sys.Name)
	}
}

func BenchmarkFig11AutotuneDetail(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.RenderFig11(rows)) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var h experiments.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, err = ctx.ComputeHeadline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.MaxSpeedup, "max_speedup")
	b.ReportMetric(h.AvgSpeedup, "avg_speedup")
	b.ReportMetric(h.TunerEfficiency, "tuner_efficiency")
}

// ---- Extensions (the paper's future work) ----

func BenchmarkExtGPUScaling(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtGPUScaling(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.GPUs >= 1 {
			b.ReportMetric(r.Speedup, fmt.Sprintf("speedup_%dgpu", r.GPUs))
		}
	}
}

func BenchmarkExtOnlineTuning(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.ExtOnline(hw.I7_2600K()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Native and substrate micro-benchmarks ----

func BenchmarkNativeSerial(b *testing.B) {
	k := kernels.NewSynthetic(500, 1)
	g := grid.New(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpuexec.RunSerial(k, g)
	}
}

func BenchmarkNativeParallelTiled(b *testing.B) {
	k := kernels.NewSynthetic(500, 1)
	g := grid.New(256, 1)
	ex := cpuexec.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Run(k, g, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeParallelUntiled(b *testing.B) {
	k := kernels.NewSynthetic(500, 1)
	g := grid.New(256, 1)
	ex := cpuexec.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Run(k, g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontierDense pins the tentpole's perf acceptance: driving
// the dense sweep through the frontier abstraction must stay within
// tolerance of the closed-form anti-diagonal path it generalizes. The
// serial pair compares RunSerialDiagRange against RunSerialFrontier's
// DiagFrontier fast path; the pooled pair compares the tile-diagonal
// executor against RunFrontier over the same grid.
func BenchmarkFrontierDense(b *testing.B) {
	k := kernels.NewSynthetic(500, 1)
	b.Run("serial/diag", func(b *testing.B) {
		g := grid.New(256, 1)
		for i := 0; i < b.N; i++ {
			cpuexec.RunSerialDiagRange(k, g, 0, g.NumDiags()-1)
		}
	})
	b.Run("serial/frontier", func(b *testing.B) {
		g := grid.New(256, 1)
		for i := 0; i < b.N; i++ {
			if err := cpuexec.RunSerialFrontier(k, g, grid.NewDiagFrontier(256, 256)); err != nil {
				b.Fatal(err)
			}
		}
	})
	ex := cpuexec.New(0)
	defer ex.Close()
	b.Run("pooled/tilediag", func(b *testing.B) {
		g := grid.New(256, 1)
		for i := 0; i < b.N; i++ {
			if err := ex.Run(k, g, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled/frontier", func(b *testing.B) {
		g := grid.New(256, 1)
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if err := ex.RunFrontier(ctx, k, g, grid.NewDiagFrontier(256, 256)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFrontierIrregular measures the irregular substrate on the
// masked catalog workload it exists for: morphological reconstruction
// over a half-open mask, scheduled cell-level and tile-level.
func BenchmarkFrontierIrregular(b *testing.B) {
	k := kernels.NewMorphRecon(-1, 1)
	ex := cpuexec.New(0)
	defer ex.Close()
	ctx := context.Background()
	for _, ct := range []int{1, 16} {
		b.Run(fmt.Sprintf("ct=%d", ct), func(b *testing.B) {
			g := grid.New(256, k.DSize())
			for i := 0; i < b.N; i++ {
				if err := ex.RunIrregular(ctx, k, g, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEstimateHybrid(b *testing.B) {
	sys := hw.I7_2600K()
	inst := plan.Instance{Dim: 1900, TSize: 2000, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: 1500, GPUTile: 1, Halo: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Estimate(sys, inst, par, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFunctional(b *testing.B) {
	sys := hw.I7_2600K()
	k := kernels.NewSynthetic(5, 1)
	par := plan.Params{CPUTile: 8, Band: 60, GPUTile: 1, Halo: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Simulate(sys, 128, k, par); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveQuickSearch(b *testing.B) {
	sys := hw.I3_540()
	space := core.QuickSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := core.Exhaustive(sys, space, core.SearchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sr.Evaluations()), "evals")
	}
}

// ---- Serving-layer micro-benchmarks ----

// BenchmarkPlanCacheHit measures the hot path of the tuning service: a
// resident plan-cache lookup (one mutex acquisition, an LRU promotion
// and a map hit).
func BenchmarkPlanCacheHit(b *testing.B) {
	c := tunecache.New(0, func(system string, in plan.Instance) (tunecache.Plan, error) {
		return tunecache.Plan{
			Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
			RTimeNs: 1e6, SerialNs: 2e6,
		}, nil
	})
	inst := plan.Instance{Dim: 1900, TSize: 2000, DSize: 1}
	if _, _, err := c.Get("i7-2600K", inst); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out, err := c.Get("i7-2600K", inst); err != nil || out != tunecache.Hit {
			b.Fatalf("lookup = %v (%v), want hit", out, err)
		}
	}
}

// BenchmarkPlanCacheHitParallel measures the contended hot path of the
// tuning service — resident lookups from every core at once — against
// the single-lock baseline (shards=1) and the sharded default
// (shards=GOMAXPROCS). On multi-core the sharded variant's hit
// throughput should exceed the single lock's: distinct keys ride
// different shard mutexes instead of serializing on one.
func BenchmarkPlanCacheHitParallel(b *testing.B) {
	warm := func(b *testing.B, shards int) (*tunecache.Cache, []plan.Instance) {
		b.Helper()
		c := tunecache.NewSharded(4096, shards, func(system string, in plan.Instance) (tunecache.Plan, error) {
			return tunecache.Plan{
				Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
				RTimeNs: 1e6, SerialNs: 2e6,
			}, nil
		})
		insts := make([]plan.Instance, 64)
		for i := range insts {
			insts[i] = plan.Instance{Dim: 300 + 25*i, TSize: 2000, DSize: 1}
			if _, _, err := c.Get("i7-2600K", insts[i]); err != nil {
				b.Fatal(err)
			}
		}
		return c, insts
	}
	shardCounts := []int{1, runtime.GOMAXPROCS(0)}
	if shardCounts[1] <= 1 {
		// Single-core host: still exercise the sharded code path, even
		// though only multi-core shows the throughput separation.
		shardCounts[1] = 8
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, insts := warm(b, shards)
			if got := c.Shards(); got != shards {
				b.Fatalf("cache built with %d shards, want %d", got, shards)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine walks the warm keys from its own offset so
				// the traffic spreads across shards like independent clients.
				i := 0
				for pb.Next() {
					in := insts[i%len(insts)]
					i++
					if _, out, err := c.Get("i7-2600K", in); err != nil || out != tunecache.Hit {
						b.Errorf("lookup = %v (%v), want hit", out, err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkTuneDuringPromotion measures the serving hot path while the
// background retrainer churns: resident lookups for one system from
// every core, with a promotion loop on the other system swapping its
// champion, invalidating its cache entries and re-warming them every
// half millisecond. Targeted invalidation means the served system's
// entries stay resident throughout, so the medians should land within a
// few percent of BenchmarkPlanCacheHitParallel's sharded variant — the
// CI trajectory gates the gap at 10%.
func BenchmarkTuneDuringPromotion(b *testing.B) {
	fill := func(system string, in plan.Instance) (tunecache.Plan, error) {
		return tunecache.Plan{
			Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
			RTimeNs: 1e6, SerialNs: 2e6,
		}, nil
	}
	shards := runtime.GOMAXPROCS(0)
	if shards <= 1 {
		shards = 8
	}
	c := tunecache.NewSharded(4096, shards, fill)
	insts := make([]plan.Instance, 64)
	for i := range insts {
		insts[i] = plan.Instance{Dim: 300 + 25*i, TSize: 2000, DSize: 1}
		if _, _, err := c.Get("i7-2600K", insts[i]); err != nil {
			b.Fatal(err)
		}
	}
	churn := make([]plan.Instance, 8)
	for i := range churn {
		churn[i] = plan.Instance{Dim: 400 + 50*i, TSize: 2000, DSize: 1}
		if _, _, err := c.Get("i3-540", churn[i]); err != nil {
			b.Fatal(err)
		}
	}

	// Resolve the challenger before the clock starts: benchTuner may
	// train the shared bench context on first use.
	challenger := benchTuner(b)
	src := retrain.NewSource(wavefront.NewStaticTunerSource(challenger))
	// One synchronous promotion before the clock starts, so the swap
	// path is exercised even on the harness's N=1 sizing pass.
	src.Promote("i3-540", challenger)
	c.InvalidateSystem("i3-540")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			src.Promote("i3-540", challenger)
			c.InvalidateSystem("i3-540")
			for _, in := range churn {
				if _, _, err := c.Get("i3-540", in); err != nil {
					b.Error(err)
					return
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			in := insts[i%len(insts)]
			i++
			if _, out, err := c.Get("i7-2600K", in); err != nil || out != tunecache.Hit {
				b.Errorf("lookup = %v (%v), want hit: promotion must not evict other systems", out, err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	if gens := src.Generation("i3-540"); gens < 2 {
		b.Fatalf("promotion never ran (generation %d)", gens)
	}
	b.ReportMetric(float64(src.Generation("i3-540")-1), "promotions")
}

// BenchmarkMetricsOverhead prices the observability layer on the
// serving hot path. The bare variant is the raw plan-cache hit; the
// instrumented variant adds everything the daemon's telemetry does per
// tune request — the request-scoped http.request and cache.lookup
// spans with annotations, the per-route request counter, and the
// lookup/latency histogram observations. The delta between the two is
// the total per-request metrics cost (about a microsecond); the served
// variant runs the real thing — POST /v1/tune on a warm cache through
// the fully instrumented daemon — whose per-request time dwarfs that
// delta, keeping the telemetry share of the serving hot path well
// under 5% (the CI trajectory separately gates
// BenchmarkPlanCacheHitParallel at 5%).
func BenchmarkMetricsOverhead(b *testing.B) {
	fill := func(system string, in plan.Instance) (tunecache.Plan, error) {
		return tunecache.Plan{
			Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
			RTimeNs: 1e6, SerialNs: 2e6,
		}, nil
	}
	inst := plan.Instance{Dim: 1900, TSize: 2000, DSize: 1}

	b.Run("bare", func(b *testing.B) {
		c := tunecache.New(0, fill)
		if _, _, err := c.Get("i7-2600K", inst); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, out, err := c.Get("i7-2600K", inst); err != nil || out != tunecache.Hit {
				b.Fatalf("lookup = %v (%v), want hit", out, err)
			}
		}
	})

	b.Run("instrumented", func(b *testing.B) {
		c := tunecache.New(0, fill)
		if _, _, err := c.Get("i7-2600K", inst); err != nil {
			b.Fatal(err)
		}
		reg := wavefront.NewMetricsRegistry()
		requests := reg.CounterVec("waved_http_requests_total",
			"Requests handled, by route.", "route").With("tune")
		latency := reg.HistogramVec("waved_http_request_duration_seconds",
			"End-to-end request latency, by route.", nil, "route").With("tune")
		lookupSec := reg.Histogram("waved_cache_lookup_duration_seconds",
			"Plan-cache lookup latency on the tune path.", nil)
		base := wavefront.WithRequestID(context.Background(), wavefront.NewRequestID())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, span := wavefront.StartRootTraceSpan(base, "http.request")
			span.Annotate("route", "tune")
			lctx, lookup := wavefront.StartTraceSpan(ctx, "cache.lookup")
			_, out, err := c.GetCtx(lctx, "i7-2600K", inst)
			lookupSec.Observe(lookup.End().Seconds())
			if err != nil || out != tunecache.Hit {
				b.Fatalf("lookup = %v (%v), want hit", out, err)
			}
			requests.Add(1)
			latency.Observe(span.End().Seconds())
		}
	})

	b.Run("served", func(b *testing.B) {
		srv, err := wavefront.NewTuningServer(wavefront.TuningConfig{
			Systems: []wavefront.System{hw.I7_2600K()},
			Tuners:  wavefront.NewStaticTunerSource(benchTuner(b)),
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		body := `{"system":"i7-2600K","dim":1900,"tsize":2000,"dsize":1}`
		post := func() {
			resp, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("tune status %d", resp.StatusCode)
			}
		}
		post() // warm the cache: every timed iteration is a hit
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post()
		}
	})
}

// BenchmarkTuneBatchEndpoint measures POST /v1/tune/batch end to end on
// a warm cache: one round trip answering a full batch of shapes.
func BenchmarkTuneBatchEndpoint(b *testing.B) {
	for _, backend := range []struct {
		name  string
		tuner func(*testing.B) wavefront.Predictor
	}{
		{"tree", func(b *testing.B) wavefront.Predictor { return benchTuner(b) }},
		{"bilinear", func(b *testing.B) wavefront.Predictor { return benchBilinear(b) }},
	} {
		b.Run(backend.name, func(b *testing.B) {
			srv, err := wavefront.NewTuningServer(wavefront.TuningConfig{
				Systems: []wavefront.System{hw.I7_2600K()},
				Tuners:  wavefront.NewStaticTunerSource(backend.tuner(b)),
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			req := wavefront.BatchTuneRequest{System: "i7-2600K"}
			for i := 0; i < 32; i++ {
				tsz, dsz := 2000.0, 1
				req.Items = append(req.Items, wavefront.TuneRequest{Dim: 300 + 50*(i%16), TSize: &tsz, DSize: &dsz})
			}
			// Warm pass outside the timed section.
			if _, err := wavefront.TuneBatch(context.Background(), nil, ts.URL, req); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := wavefront.TuneBatch(context.Background(), nil, ts.URL, req)
				if err != nil {
					b.Fatal(err)
				}
				if out.Errors != 0 {
					b.Fatalf("batch errors: %+v", out)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*len(req.Items))/b.Elapsed().Seconds(), "items/s")
		})
	}
}

// benchTuner trains (once) the quick-space tuner the serving benchmarks
// predict through.
func benchTuner(b *testing.B) *core.Tuner {
	b.Helper()
	ctx := benchContext(b)
	t, err := ctx.Tuner(hw.I7_2600K())
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// benchBilinear trains (once) the bilinear counterpart from the same
// quick-space search result.
var (
	benchBilinearOnce sync.Once
	benchBilinearTun  *core.BilinearTuner
)

func benchBilinear(b *testing.B) *core.BilinearTuner {
	b.Helper()
	ctx := benchContext(b)
	sr, err := ctx.Search(hw.I7_2600K())
	if err != nil {
		b.Fatal(err)
	}
	benchBilinearOnce.Do(func() {
		benchBilinearTun, err = core.TrainBilinear(sr, ctx.Cfg.TrainOpts)
	})
	if err != nil || benchBilinearTun == nil {
		b.Fatalf("training bilinear backend: %v", err)
	}
	return benchBilinearTun
}

// predictBackendSink keeps Predict calls observable to the compiler.
var predictBackendSink core.Prediction

// BenchmarkPredictBackend compares one uncached model evaluation across
// the two prediction backends: the paper's SVM+M5/REP tree ensemble
// versus the WaveTune-style bilinear dot products. Both run the same
// gate/clamp/Normalize deployment pipeline; the bilinear backend should
// be several times faster per prediction at zero allocations.
func BenchmarkPredictBackend(b *testing.B) {
	insts := []plan.Instance{
		{Dim: 500, TSize: 200, DSize: 1},
		{Dim: 1100, TSize: 2000, DSize: 5},
		{Dim: 1900, TSize: 40, DSize: 3},
		{Dim: 2900, TSize: 11000, DSize: 1},
	}
	for _, backend := range []struct {
		name string
		p    core.Predictor
	}{
		{"tree", benchTuner(b)},
		{"bilinear", benchBilinear(b)},
	} {
		b.Run(backend.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				predictBackendSink = backend.p.Predict(insts[i%len(insts)])
			}
		})
	}
}

// BenchmarkJobThroughput measures end-to-end submit→complete job
// operations per second at a fixed worker count, with the plan fetch
// served from a warm cache and the execution measured on the modeled
// system.
func BenchmarkJobThroughput(b *testing.B) {
	cache := tunecache.New(0, func(system string, in plan.Instance) (tunecache.Plan, error) {
		return tunecache.Plan{
			Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
			RTimeNs: 1e6, SerialNs: 2e6,
		}, nil
	})
	m, err := jobs.New(jobs.Config{
		Workers:    4,
		QueueDepth: 1 << 16,
		MaxRecords: 1 << 16,
		Plans:      cache.Get,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	inst := plan.Instance{Dim: 256, TSize: 100, DSize: 1}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// b.Fatal must not be called from RunParallel goroutines; report
		// with b.Error and bail out of the loop instead.
		for pb.Next() {
			j, err := m.Submit(jobs.Spec{System: "i7-2600K", Inst: inst})
			if err != nil {
				b.Error(err)
				return
			}
			done, err := m.Await(context.Background(), j.ID)
			if err != nil {
				b.Error(err)
				return
			}
			if done.State != jobs.StateSucceeded {
				b.Errorf("job %s = %v (%s)", j.ID, done.State, done.Err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkPipelineThroughput measures end-to-end submit→complete
// wave-DAG pipeline operations per second: each pipeline is two
// sequential waves of two parallel jobs, so the figure prices the wave
// barrier and driver overhead on top of raw job throughput.
func BenchmarkPipelineThroughput(b *testing.B) {
	cache := tunecache.New(0, func(system string, in plan.Instance) (tunecache.Plan, error) {
		return tunecache.Plan{
			Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
			RTimeNs: 1e6, SerialNs: 2e6,
		}, nil
	})
	m, err := jobs.New(jobs.Config{
		Workers:      4,
		QueueDepth:   1 << 16,
		MaxRecords:   1 << 16,
		MaxPipelines: 1 << 10,
		Plans:        cache.Get,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	job := func(dim int) jobs.PipelineJob {
		return jobs.PipelineJob{Spec: jobs.Spec{
			System: "i7-2600K",
			Inst:   plan.Instance{Dim: dim, TSize: 100, DSize: 1},
		}}
	}
	spec := jobs.PipelineSpec{Waves: []jobs.WaveSpec{
		{Jobs: []jobs.PipelineJob{job(256), job(256)}},
		{Jobs: []jobs.PipelineJob{job(256), job(256)}},
	}}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p, err := m.SubmitPipeline(spec)
			if err != nil {
				b.Error(err)
				return
			}
			done, err := m.AwaitPipeline(context.Background(), p.ID)
			if err != nil {
				b.Error(err)
				return
			}
			if done.State != jobs.PipeSucceeded {
				b.Errorf("pipeline %s = %v (%s)", p.ID, done.State, done.Err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pipelines/s")
}

func BenchmarkM5Fit(b *testing.B) {
	d := ml.NewDataset("x", "y")
	for i := 0; i < 500; i++ {
		x := float64(i % 25)
		y := float64((i * 7) % 13)
		target := 2*x - y
		if x > 12 {
			target = -x + 3*y
		}
		d.Add([]float64{x, y}, target)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.FitM5(d, ml.DefaultM5Options())
	}
}

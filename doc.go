// Package repro is a reproduction of "Autotuning Wavefront Applications
// for Multicore Multi-GPU Hybrid Architectures" (Mohanty and Cole,
// PMAM 2014, DOI 10.1145/2560683.2560689).
//
// The public API lives in repro/wavefront; the substrates (grid,
// kernels, discrete-event simulator, simulated OpenCL runtime, machine
// models, ML stack, autotuner, experiments) live under repro/internal.
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package repro

// Package repro is a reproduction of "Autotuning Wavefront Applications
// for Multicore Multi-GPU Hybrid Architectures" (Mohanty and Cole,
// PMAM '14, co-located with PPoPP 2014, DOI 10.1145/2560683.2560689).
//
// The public API lives in repro/wavefront; the substrates (grid,
// kernels, discrete-event simulator, simulated OpenCL runtime, machine
// models, ML stack, autotuner, experiments) live under repro/internal.
// The wavefront substrate supports both the paper's square dim x dim
// arrays and general rectangular rows x cols arrays (e.g. aligning two
// sequences of unequal length); every layer — native executors, the
// three-phase estimator/simulator, and the exhaustive search — accepts
// both shapes. bench_test.go in this directory regenerates the tables
// and figures of the paper's evaluation.
//
// Build and test with the standard toolchain:
//
//	go build ./... && go test ./...
//
// See README.md for an overview, the rectangular-grid API and the
// tuning daemon (cmd/waved), and ARCHITECTURE.md for the layer diagram
// and the package-to-paper map.
package repro

package repro

// End-to-end integration test of the full workflow the paper describes
// plus this reproduction's persistence extensions:
//
//	exhaustive sweep -> CSV -> reload -> train -> save tuner -> load
//	tuner -> predict for an unseen app -> simulate functionally ->
//	verify against the native serial reference.

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/cpuexec"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

func TestFactoryWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	sys := hw.I7_2600K()

	// 1. Sweep the synthetic application.
	sr, err := core.Exhaustive(sys, core.QuickSpace(), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist and reload the sweep.
	var buf bytes.Buffer
	if err := sr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Train "in the factory" and ship the tuner as JSON.
	tuner, err := core.Train(loaded, core.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tuner.json")
	if err := tuner.Save(path); err != nil {
		t.Fatal(err)
	}
	deployed, err := core.LoadTuner(path)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Deploy on an unseen application: Nash at an off-grid dim.
	k := kernels.NewNash(4)
	dim := 333
	inst := plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()}
	pred := deployed.Predict(inst)
	if pred.Serial {
		t.Fatalf("coarse Nash instance predicted serial: %v", pred)
	}
	if _, err := plan.Build(inst, pred.Par); err != nil {
		t.Fatalf("invalid deployed prediction: %v", err)
	}

	// 5. The tuned configuration must beat the serial baseline.
	auto, err := deployed.RTimeFor(inst, pred)
	if err != nil {
		t.Fatal(err)
	}
	serial := engine.SerialNs(sys, inst)
	if auto >= serial {
		t.Errorf("tuned run (%v) no faster than serial (%v)", auto, serial)
	}

	// 6. Execute the prediction functionally and verify every cell.
	res, g, err := engine.Simulate(sys, dim, k, pred.Par)
	if err != nil {
		t.Fatal(err)
	}
	want := grid.New(dim, k.DSize())
	cpuexec.RunSerial(k, want)
	if !g.Equal(want) {
		t.Error("deployed hybrid run computed wrong results")
	}
	if res.RTimeNs <= 0 {
		t.Error("non-positive virtual runtime")
	}

	// 7. Runtime refinement must not regress the deployment.
	online := core.NewOnlineTuner(deployed)
	_, st, err := online.Refine(inst)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalNs > auto*1.0000001 {
		t.Errorf("online refinement regressed: %v > %v", st.FinalNs, auto)
	}
}

func TestAllSystemsProduceConsistentPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	// Every modeled system must support the full pipeline and keep the
	// functional invariant on a hybrid prediction.
	for _, sys := range hw.Systems() {
		sr, err := core.Exhaustive(sys, core.QuickSpace(), core.SearchOptions{})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		tuner, err := core.Train(sr, core.DefaultTrainOptions())
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		k := kernels.NewSynthetic(2000, 1)
		dim := 200
		pred := tuner.Predict(plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()})
		if pred.Serial {
			continue
		}
		_, g, err := engine.Simulate(sys, dim, k, pred.Par)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		want := grid.New(dim, k.DSize())
		cpuexec.RunSerial(k, want)
		if !g.Equal(want) {
			t.Errorf("%s: functional mismatch", sys.Name)
		}
	}
}

package repro

// End-to-end integration test of the full workflow the paper describes
// plus this reproduction's persistence extensions:
//
//	exhaustive sweep -> CSV -> reload -> train -> save tuner -> load
//	tuner -> predict for an unseen app -> simulate functionally ->
//	verify against the native serial reference.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpuexec"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func TestFactoryWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	sys := hw.I7_2600K()

	// 1. Sweep the synthetic application.
	sr, err := core.Exhaustive(sys, core.QuickSpace(), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist and reload the sweep.
	var buf bytes.Buffer
	if err := sr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Train "in the factory" and ship the tuner as JSON.
	tuner, err := core.Train(loaded, core.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tuner.json")
	if err := tuner.Save(path); err != nil {
		t.Fatal(err)
	}
	deployed, err := core.LoadTuner(path)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Deploy on an unseen application: Nash at an off-grid dim.
	k := kernels.NewNash(4)
	dim := 333
	inst := plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()}
	pred := deployed.Predict(inst)
	if pred.Serial {
		t.Fatalf("coarse Nash instance predicted serial: %v", pred)
	}
	if _, err := plan.Build(inst, pred.Par); err != nil {
		t.Fatalf("invalid deployed prediction: %v", err)
	}

	// 5. The tuned configuration must beat the serial baseline.
	auto, err := deployed.RTimeFor(inst, pred)
	if err != nil {
		t.Fatal(err)
	}
	serial := engine.SerialNs(sys, inst)
	if auto >= serial {
		t.Errorf("tuned run (%v) no faster than serial (%v)", auto, serial)
	}

	// 6. Execute the prediction functionally and verify every cell.
	res, g, err := engine.Simulate(sys, dim, k, pred.Par)
	if err != nil {
		t.Fatal(err)
	}
	want := grid.New(dim, k.DSize())
	cpuexec.RunSerial(k, want)
	if !g.Equal(want) {
		t.Error("deployed hybrid run computed wrong results")
	}
	if res.RTimeNs <= 0 {
		t.Error("non-positive virtual runtime")
	}

	// 7. Runtime refinement must not regress the deployment.
	online := core.NewOnlineTuner(deployed)
	_, st, err := online.Refine(inst)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalNs > auto*1.0000001 {
		t.Errorf("online refinement regressed: %v > %v", st.FinalNs, auto)
	}
}

func TestAllSystemsProduceConsistentPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	// Every modeled system must support the full pipeline and keep the
	// functional invariant on a hybrid prediction.
	for _, sys := range hw.Systems() {
		sr, err := core.Exhaustive(sys, core.QuickSpace(), core.SearchOptions{})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		tuner, err := core.Train(sr, core.DefaultTrainOptions())
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		k := kernels.NewSynthetic(2000, 1)
		dim := 200
		pred := tuner.Predict(plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()})
		if pred.Serial {
			continue
		}
		_, g, err := engine.Simulate(sys, dim, k, pred.Par)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		want := grid.New(dim, k.DSize())
		cpuexec.RunSerial(k, want)
		if !g.Equal(want) {
			t.Errorf("%s: functional mismatch", sys.Name)
		}
	}
}

// TestPipelineOverHTTP drives a wave-DAG pipeline end to end through
// the daemon's HTTP surface: an align wave fanning out across three
// catalog applications, then a fold wave admitted only after the
// barrier. It asserts the job records' timestamps respect the barrier
// and that /v1/stats accounts for the pipeline.
func TestPipelineOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	sys := hw.I7_2600K()
	sr, err := core.Exhaustive(sys, core.QuickSpace(), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := core.Train(sr, core.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.New(service.Config{
		Systems: []hw.System{sys},
		Tuners:  service.NewStaticSource(tuner),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{
		"name": "align-then-fold",
		"system": "i7-2600K",
		"waves": [
			{"name": "align", "jobs": [
				{"name": "sw",  "app": "swaffine", "dim": 200},
				{"name": "lcs", "app": "lcs",      "dim": 200},
				{"name": "dtw", "app": "dtw",      "dim": 200}
			]},
			{"name": "fold", "after": ["align"], "policy": "continue", "jobs": [
				{"name": "rna", "app": "nussinov", "dim": 96}
			]}
		]
	}`
	resp, err := http.Post(ts.URL+"/v1/pipelines", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status = %d: %s", resp.StatusCode, b)
	}
	var pi service.PipelineInfo
	if err := json.NewDecoder(resp.Body).Decode(&pi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	getJSON := func(path string, out any) int {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, r.Body)
		}
		return r.StatusCode
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if code := getJSON("/v1/pipelines/"+pi.ID, &pi); code != http.StatusOK {
			t.Fatalf("polling pipeline: status %d", code)
		}
		if pi.State == "succeeded" || pi.State == "failed" || pi.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline stuck in %s", pi.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pi.State != "succeeded" {
		t.Fatalf("pipeline = %s (err %q), want succeeded", pi.State, pi.Error)
	}

	// Every wave job is an ordinary record; the fold job must not have
	// started before the slowest align job finished (Go timestamps are
	// monotonic, so this is a sound ordering check).
	var alignDone time.Time
	for _, id := range pi.Waves[0].JobIDs {
		var ji service.JobInfo
		if code := getJSON("/v1/jobs/"+id, &ji); code != http.StatusOK {
			t.Fatalf("align job %s: status %d", id, code)
		}
		if ji.State != "succeeded" || ji.Result == nil {
			t.Fatalf("align job %s = %s (err %q)", id, ji.State, ji.Error)
		}
		if ji.FinishedAt != nil && ji.FinishedAt.After(alignDone) {
			alignDone = *ji.FinishedAt
		}
	}
	for _, id := range pi.Waves[1].JobIDs {
		var ji service.JobInfo
		if code := getJSON("/v1/jobs/"+id, &ji); code != http.StatusOK {
			t.Fatalf("fold job %s: status %d", id, code)
		}
		if ji.State != "succeeded" {
			t.Fatalf("fold job %s = %s (err %q)", id, ji.State, ji.Error)
		}
		if ji.StartedAt == nil || ji.StartedAt.Before(alignDone) {
			t.Errorf("fold job %s started %v, before the align barrier at %v",
				id, ji.StartedAt, alignDone)
		}
	}

	var stats service.StatsResponse
	if code := getJSON("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Pipelines.Submitted != 1 || stats.Pipelines.Succeeded != 1 ||
		stats.Pipelines.WavesResolved != 2 || stats.Pipelines.Active != 0 {
		t.Errorf("pipeline stats = %+v", stats.Pipelines)
	}
	if stats.Jobs.Succeeded != 4 {
		t.Errorf("job stats = %+v, want the 4 wave jobs", stats.Jobs)
	}
	if stats.Requests["pipelines"] == 0 {
		t.Errorf("request counters = %+v", stats.Requests)
	}
}

// TestMetricsScrapeEndToEnd boots the daemon, drives every traffic
// class through it — tune hits and misses, a batch, jobs, a pipeline,
// an error — and then scrapes GET /metrics, failing on any output the
// strict exposition parser rejects and on missing instrumentation
// (the CI scrape gate).
func TestMetricsScrapeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	sys := hw.I7_2600K()
	sr, err := core.Exhaustive(sys, core.QuickSpace(), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := core.Train(sr, core.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.New(service.Config{
		Systems: []hw.System{sys},
		Tuners:  service.NewStaticSource(tuner),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	drain := func(resp *http.Response) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Tune miss then hit, a batch, and a rejected request.
	drain(post("/v1/tune", `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`))
	drain(post("/v1/tune", `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`))
	drain(post("/v1/tune/batch", `{"system":"i7-2600K","items":[{"dim":700,"tsize":10,"dsize":1}]}`))
	if resp := post("/v1/tune", `{"system":"riscv","dim":500,"tsize":10,"dsize":1}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad tune status %d, want 404", resp.StatusCode)
	} else {
		drain(resp)
	}

	// A job and a single-wave pipeline, run to completion so the
	// queue-wait, execution, wave and engine histograms all observe.
	resp := post("/v1/jobs", `{"system":"i7-2600K","dim":300,"tsize":10,"dsize":1}`)
	var ji service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&ji); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + ji.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&ji); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if ji.State == "succeeded" || ji.State == "failed" || ji.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", ji.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = post("/v1/pipelines", `{"system":"i7-2600K","waves":[{"jobs":[{"dim":300,"tsize":10,"dsize":1}]}]}`)
	var pi service.PipelineInfo
	if err := json.NewDecoder(resp.Body).Decode(&pi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for {
		r, err := http.Get(ts.URL + "/v1/pipelines/" + pi.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&pi); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if pi.State == "succeeded" || pi.State == "failed" || pi.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline stuck in %s", pi.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", r.StatusCode)
	}
	text, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(bytes.NewReader(text)); err != nil {
		t.Fatalf("unparseable exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		`waved_http_requests_total{route="tune"}`,
		`waved_http_errors_total{route="tune"} 1`,
		`waved_cache_lookups_total{shard=`,
		"waved_cache_lookup_duration_seconds_count",
		"waved_tuner_predict_duration_seconds_count",
		"waved_job_queue_wait_seconds_count 2",
		"waved_job_execution_seconds_count 2",
		"waved_pipeline_wave_seconds_count 1",
		`waved_jobs_events_total{event="succeeded"} 2`,
		"waved_pipeline_waves_resolved_total 1",
		"waved_uptime_seconds",
	} {
		if !bytes.Contains(text, []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if bytes.Contains(text, []byte("waved_engine_measure_seconds_count 0")) {
		t.Error("engine measurements not observed")
	}
}
